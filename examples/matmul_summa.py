#!/usr/bin/env python3
"""SUMMA matrix multiplication: an application-level broadcast workload.

The paper motivates broadcast tuning with dense linear algebra (HPL,
matrix multiplication). SUMMA is the classic case: to compute
``C = A x B`` on a ``g x g`` process grid, every outer step broadcasts a
block of A along each process *row* and a block of B along each process
*column* — broadcasts dominate its communication.

This example runs SUMMA's communication+compute schedule on the
simulated machine twice — once with MPICH3's native scatter-ring
broadcast and once with the paper's tuned ring — and reports the
end-to-end application speedup, which is how a broadcast optimisation
actually reaches users.

Run:  python examples/matmul_summa.py
"""

from repro.collectives import bcast_scatter_ring_native, bcast_scatter_ring_opt
from repro.machine import Machine, hornet
from repro.mpi import Communicator, Job
from repro.util import Table, format_size

GRID = 6  # 6x6 = 36 ranks (non-power-of-two: the paper's npof2 case)
MATRIX_N = 6144  # global matrix dimension
ELEM = 8  # double precision
FLOPS_PER_RANK = 20e9  # effective GEMM rate per rank


def summa_program(ctx, grid, block_bytes, flops_per_block, bcast):
    """One rank's SUMMA schedule on a grid-row/grid-column communicator
    pair. ``ctx`` is bound to the world communicator."""
    me = ctx.rank
    row, col = divmod(me, grid)
    world = ctx.comm
    row_comm = world.subset([row * grid + c for c in range(grid)])
    col_comm = world.subset([r * grid + col for r in range(grid)])
    row_ctx = ctx.sub(row_comm)
    col_ctx = ctx.sub(col_comm)

    for k in range(grid):
        # Owner of the k-th A-block in this row / B-block in this column.
        yield from bcast(row_ctx, block_bytes, root=k)
        yield from bcast(col_ctx, block_bytes, root=k)
        yield from ctx.compute(flops_per_block / FLOPS_PER_RANK)
    return me


def run_summa(bcast) -> float:
    nranks = GRID * GRID
    machine = Machine(hornet(nodes=4), nranks=nranks)
    block_dim = MATRIX_N // GRID
    block_bytes = block_dim * block_dim * ELEM
    flops_per_block = 2.0 * block_dim * block_dim * block_dim

    def factory(ctx):
        return summa_program(ctx, GRID, block_bytes, flops_per_block, bcast)

    result = Job(machine, factory, working_set=block_bytes).run()
    return result.time


def main() -> None:
    block_dim = MATRIX_N // GRID
    print(
        f"SUMMA C = A x B: N={MATRIX_N}, {GRID}x{GRID} grid "
        f"({GRID * GRID} ranks, npof2), block {block_dim}x{block_dim} "
        f"({format_size(block_dim * block_dim * ELEM)})"
    )
    print()

    t_native = run_summa(bcast_scatter_ring_native)
    t_opt = run_summa(bcast_scatter_ring_opt)

    table = Table(
        ["broadcast design", "app time (ms)", "speedup"],
        formats=[None, ".2f", ".3f"],
        title="End-to-end SUMMA runtime",
    )
    table.add_row("MPI_Bcast_native (enclosed ring)", t_native * 1e3, 1.0)
    table.add_row("MPI_Bcast_opt (tuned ring)", t_opt * 1e3, t_native / t_opt)
    print(table)
    print()
    print(
        f"the tuned broadcast alone makes the whole application "
        f"{(t_native / t_opt - 1) * 100:.1f}% faster"
    )


if __name__ == "__main__":
    main()
