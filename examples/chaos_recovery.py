#!/usr/bin/env python3
"""Chaos recovery: broadcasts on a lossy fabric, bit-for-bit intact.

The simulator's other gates assume a perfect network. This example
turns that assumption off: a seeded fault plan drops, duplicates and
corrupts messages while the tuned scatter-ring broadcast runs on the
ARQ reliable transport (sequence numbers, ACKs, timeout + backoff
retransmit). Three views:

1. recovery telemetry as the drop rate climbs — retransmissions and
   timeouts grow, yet every run stays correct;
2. the chaos differential gate on one collective: payloads compared
   bit-for-bit against a fault-free reference run, wire counters
   required to match exactly when nothing was actually lost;
3. graceful degradation: with a crashed rank the selector abandons the
   ring (which serialises through every rank) for the binomial tree,
   and a run that cannot reach a dead peer fails with a *typed* error
   naming the dead link instead of hanging.

Run:  python examples/chaos_recovery.py
"""

from repro.analysis.chaos import default_plans, run_chaos_point
from repro.collectives.selector import LONG_MSG_SIZE, choose_bcast_name
from repro.core import simulate_bcast
from repro.errors import TransportExhaustedError
from repro.machine import ideal
from repro.sim import FaultPlan
from repro.util import Table, format_size

P, NBYTES = 8, 1 << 14


def recovery_telemetry() -> None:
    print(
        f"1. tuned ring broadcast of {format_size(NBYTES)} across {P} ranks "
        "on an increasingly lossy fabric\n"
    )
    table = Table(
        ["drop rate", "time (us)", "drops", "retrans", "timeouts", "ACKs"],
        formats=[None, ".1f", None, None, None, None],
    )
    for drop_p in (0.0, 0.05, 0.1, 0.2, 0.3):
        plan = FaultPlan.uniform(seed=1, drop_p=drop_p, name=f"drop{drop_p:g}")
        rec = simulate_bcast(
            ideal(), P, NBYTES, algorithm="scatter_ring_opt", faults=plan
        )
        table.add_row(
            f"{drop_p:.0%}",
            rec.time * 1e6,
            rec.drops_injected,
            rec.retrans_messages,
            rec.timeouts,
            rec.ack_messages,
        )
    print(table)
    print(
        "every row delivered the same bytes — loss costs time, never "
        "correctness\n"
    )


def differential_gate() -> None:
    print("2. chaos differential gate: bcast_opt vs a fault-free reference\n")
    table = Table(["plan", "verdict", "drops", "retrans", "detail"])
    for plan in default_plans(seed=0):
        check = run_chaos_point("bcast_opt", P, plan, nbytes=NBYTES)
        table.add_row(
            plan.name,
            check.status.upper(),
            check.drops,
            check.retrans,
            check.detail[:48] or "payloads bit-identical",
        )
    print(table)
    print(
        "'EXHAUSTED' is the crash plan: the retry budget ends in a typed "
        "error, not a hang\n"
    )


def degradation() -> None:
    print("3. graceful degradation when rank 1 is dead\n")
    crash = FaultPlan.none(seed=0, name="crash").with_crash(1)
    clean_pick = choose_bcast_name(LONG_MSG_SIZE, P, tuned=True)
    crash_pick = choose_bcast_name(LONG_MSG_SIZE, P, tuned=True, faults=crash)
    print(f"  selector, healthy fabric : {clean_pick}")
    print(f"  selector, rank 1 crashed : {crash_pick} (ring avoided)")
    try:
        simulate_bcast(
            ideal(), P, NBYTES, algorithm="scatter_ring_opt", faults=crash
        )
    except TransportExhaustedError as exc:
        print(f"  forcing the ring anyway  : {exc}")


def main() -> None:
    recovery_telemetry()
    differential_gate()
    degradation()


if __name__ == "__main__":
    main()
