#!/usr/bin/env python3
"""Algorithm tour: how MPICH3 picks a broadcast, and where the paper's
optimisation applies.

Walks message sizes across the 12288-byte and 524288-byte thresholds for
one power-of-two and one non-power-of-two communicator, showing which
algorithm the MPICH3 selector picks, what the tuned selector changes,
and the simulated time of every algorithm at each point — including the
three-phase SMP-aware broadcast.

Run:  python examples/algorithm_tour.py
"""

from repro.collectives import choose_bcast_name, classify_message
from repro.core import simulate_bcast
from repro.machine import hornet
from repro.util import Table, format_size

SIZES = [4096, 12288, 65536, 262144, 524288, 2**21]
ALGOS = ["binomial", "scatter_ring_native", "scatter_ring_opt", "smp_opt"]


def tour(nranks: int) -> None:
    spec = hornet(nodes=8)
    table = Table(
        ["msg size", "class", "MPICH3 picks", "tuned picks"]
        + [f"{a} (us)" for a in ALGOS],
        formats=[None, None, None, None] + [".1f"] * len(ALGOS),
        title=f"np={nranks} ({'pof2' if nranks & (nranks - 1) == 0 else 'npof2'})",
    )
    for size in SIZES:
        row = [
            format_size(size),
            classify_message(size),
            choose_bcast_name(size, nranks),
            choose_bcast_name(size, nranks, tuned=True),
        ]
        for algo in ALGOS:
            if algo == "scatter_rdbl" and nranks & (nranks - 1):
                row.append(None)
                continue
            rec = simulate_bcast(spec, nranks, size, algorithm=algo)
            row.append(rec.time * 1e6)
        table.add_row(*row)
    print(table)
    print()


def main() -> None:
    print(
        "MPICH3 selection rules: <12288B or <8 procs -> binomial; "
        "medium+pof2 -> scatter+recursive-doubling; otherwise the ring "
        "this paper tunes.\n"
    )
    tour(64)   # pof2: medium messages dodge the ring
    tour(36)   # npof2: medium messages hit the ring -> mmsg-npof2 case
    print(
        "note how at np=36 every size from 12KiB up lands on the ring "
        "path — exactly the mmsg-npof2 + lmsg regime the paper optimises."
    )


if __name__ == "__main__":
    main()
