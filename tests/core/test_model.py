"""Cross-validation: analytic alpha-beta model vs the DES on the ideal
machine — the simulator's strongest correctness anchor."""

import pytest

from repro.core import (
    predict,
    simulate_bcast,
    t_binomial_bcast,
    t_binomial_scatter,
    t_ring_allgather,
    t_scatter_ring_bcast,
)
from repro.errors import ConfigurationError
from repro.machine import Machine, hornet, ideal

GIB = 1 << 30
SPEC = ideal(nodes=8, cores_per_node=8)


class TestFormulas:
    def test_binomial_single_rank(self):
        assert t_binomial_bcast(SPEC, 1, 1000) == 0.0

    def test_binomial_two_ranks(self):
        # One hop: alpha + n * beta.
        t = t_binomial_bcast(SPEC, 2, GIB)
        assert t == pytest.approx(1e-6 + 1.0)

    def test_ring_p_minus_1_steps(self):
        t = t_ring_allgather(SPEC, 4, 4 * GIB // 4)
        # 3 steps, chunk = GiB/4, duplex factor 2.
        assert t == pytest.approx(3 * (1e-6 + 2 * (GIB // 4) / GIB))

    def test_scatter_formula(self):
        t = t_binomial_scatter(SPEC, 4, 400)
        assert t == pytest.approx(2 * 1e-6 + 300 / GIB)

    def test_total_is_sum(self):
        assert t_scatter_ring_bcast(SPEC, 8, 8000) == pytest.approx(
            t_binomial_scatter(SPEC, 8, 8000) + t_ring_allgather(SPEC, 8, 8000)
        )

    def test_predict_dispatch(self):
        assert predict(SPEC, "binomial", 8, 100) == t_binomial_bcast(SPEC, 8, 100)
        assert predict(SPEC, "scatter_ring_opt", 8, 100) == t_scatter_ring_bcast(
            SPEC, 8, 100
        )
        with pytest.raises(ConfigurationError):
            predict(SPEC, "smp", 8, 100)

    def test_rejects_non_ideal_spec(self):
        with pytest.raises(ConfigurationError):
            t_binomial_bcast(hornet(), 8, 100)


class TestDesAgreement:
    """The DES must land on the analytic prediction on the ideal machine."""

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    @pytest.mark.parametrize("nbytes", [2**16, 2**20])
    def test_binomial(self, P, nbytes):
        rec = simulate_bcast(SPEC, P, nbytes, algorithm="binomial")
        assert rec.time == pytest.approx(
            t_binomial_bcast(SPEC, P, nbytes), rel=0.02
        )

    @pytest.mark.parametrize("P", [4, 8, 16])
    @pytest.mark.parametrize("nbytes", [2**16, 2**20, 2**22])
    def test_scatter_ring_native(self, P, nbytes):
        rec = simulate_bcast(SPEC, P, nbytes, algorithm="scatter_ring_native")
        assert rec.time == pytest.approx(
            t_scatter_ring_bcast(SPEC, P, nbytes), rel=0.05
        )

    @pytest.mark.parametrize("P", [4, 8, 16])
    def test_model_upper_bounds_tuned_ring(self, P):
        """Even on the ideal machine, send and receive share each rank's
        copy engine, so the half-duplex endpoints give the tuned ring a
        small edge; the analytic time is its exact value for native and
        an upper bound (within ~15%) for tuned."""
        nbytes = 2**20
        t_native = simulate_bcast(SPEC, P, nbytes, algorithm="scatter_ring_native").time
        t_opt = simulate_bcast(SPEC, P, nbytes, algorithm="scatter_ring_opt").time
        model = t_scatter_ring_bcast(SPEC, P, nbytes)
        assert t_native == pytest.approx(model, rel=0.02)
        assert t_opt <= t_native * (1 + 1e-9)
        assert t_opt >= 0.8 * model

    def test_npof2_ring(self):
        rec = simulate_bcast(SPEC, 10, 2**20, algorithm="scatter_ring_opt")
        assert rec.time == pytest.approx(
            t_scatter_ring_bcast(SPEC, 10, 2**20), rel=0.05
        )
