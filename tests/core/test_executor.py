"""Tests for the parallel sweep executor."""

import pytest

from repro.core import Sweep, SweepExecutor, SweepPoint, resolve_jobs
from repro.errors import SweepExecutionError
from repro.machine import ideal


def small_spec():
    return ideal(nodes=4, cores_per_node=8)


def small_points():
    return [
        SweepPoint(a, p, n)
        for a in ("scatter_ring_native", "scatter_ring_opt")
        for p in (4, 8)
        for n in (16 * 1024, 64 * 1024)
    ]


class TestResolveJobs:
    def test_default_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3


class TestEquivalence:
    def test_parallel_matches_serial(self):
        """jobs=1 and jobs=4 produce identical records in identical order."""
        points = small_points()
        serial = SweepExecutor(jobs=1).run(small_spec(), points)
        parallel = SweepExecutor(jobs=4).run(small_spec(), points)
        assert serial == parallel
        for point, rec in zip(points, serial):
            assert (rec.algorithm, rec.nranks, rec.nbytes) == (
                point.algorithm,
                point.nranks,
                point.nbytes,
            )

    def test_sweep_run_jobs_equivalence(self):
        def sweep():
            return Sweep(
                small_spec(),
                sizes=["16KiB", "64KiB"],
                ranks=[4, 8],
                algorithms=["scatter_ring_native", "scatter_ring_opt"],
            )

        assert sweep().run(jobs=1) == sweep().run(jobs=4)

    def test_progress_fires_for_every_point(self):
        points = small_points()
        seen = []
        SweepExecutor(jobs=2).run(small_spec(), points, progress=seen.append)
        assert seen == points


class TestFailurePropagation:
    def test_serial_failure_carries_point(self):
        bad = SweepPoint("no_such_algorithm", 4, 1024)
        with pytest.raises(SweepExecutionError) as err:
            SweepExecutor(jobs=1).run(small_spec(), [bad])
        assert err.value.point == bad
        assert "no_such_algorithm" in str(err.value)

    def test_parallel_failure_carries_point(self):
        points = small_points()
        bad = SweepPoint("no_such_algorithm", 4, 1024)
        with pytest.raises(SweepExecutionError) as err:
            SweepExecutor(jobs=4).run(small_spec(), points[:3] + [bad] + points[3:])
        assert err.value.point == bad
        assert err.value.error_type  # original class name preserved
        assert err.value.worker_traceback  # worker-side traceback attached

    def test_earliest_failure_wins(self):
        bad1 = SweepPoint("bogus_one", 4, 1024)
        bad2 = SweepPoint("bogus_two", 4, 1024)
        with pytest.raises(SweepExecutionError) as err:
            SweepExecutor(jobs=2).run(small_spec(), [bad1, bad2])
        assert err.value.point == bad1


class TestGrouping:
    """Memo-friendly batching: group_points is deterministic and total."""

    def test_groups_by_algorithm_and_ranks(self):
        from repro.core import group_points

        points = small_points()
        batches = group_points(points, list(range(len(points))), workers=1)
        assert sorted(i for b in batches for i in b) == list(range(len(points)))
        for batch in batches:
            keys = {(points[i].algorithm, points[i].nranks) for i in batch}
            assert len(keys) == 1  # one schedule family per batch

    def test_splits_to_saturate_workers(self):
        from repro.core import group_points

        points = [SweepPoint("a", 4, n) for n in range(1, 9)]
        batches = group_points(points, list(range(8)), workers=4)
        assert len(batches) == 4
        assert sorted(i for b in batches for i in b) == list(range(8))
        for batch in batches:
            assert batch == sorted(batch)  # size axis order preserved

    def test_never_splits_below_one(self):
        from repro.core import group_points

        points = [SweepPoint("a", 4, 1024)]
        batches = group_points(points, [0], workers=8)
        assert batches == [[0]]

    def test_deterministic(self):
        from repro.core import group_points

        points = small_points()
        indices = list(range(len(points)))
        assert group_points(points, indices, 3) == group_points(points, indices, 3)

    def test_batched_parallel_matches_serial_with_mixed_families(self):
        points = [
            SweepPoint(a, p, n)
            for n in (16 * 1024, 32 * 1024, 64 * 1024)
            for a in ("scatter_ring_native", "scatter_ring_opt")
            for p in (4, 8)
        ]
        serial = SweepExecutor(jobs=1).run(small_spec(), points)
        parallel = SweepExecutor(jobs=3).run(small_spec(), points)
        assert serial == parallel
