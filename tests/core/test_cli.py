"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.nranks == 64 and args.nbytes == "1MiB"
        assert args.machine == "hornet"

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--machine", "summit"])


class TestCommands:
    def test_compare_output(self, capsys):
        rc = main(["compare", "--nranks", "8", "--nodes", "2", "--nbytes", "256KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=8" in out and "MB/s" in out

    def test_sweep_output(self, capsys):
        rc = main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB,128KiB",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "64KiB" in out and "improvement" in out

    def test_traffic_output(self, capsys):
        rc = main(["traffic", "--procs", "8,10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "56" in out and "44" in out and "90" in out and "75" in out

    def test_laki_preset(self, capsys):
        rc = main(
            ["compare", "--machine", "laki", "--nranks", "8", "--nbytes", "128KiB"]
        )
        assert rc == 0
        assert "P=8" in capsys.readouterr().out

    def test_round_robin_placement(self, capsys):
        rc = main(
            [
                "compare",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--placement",
                "round_robin",
            ]
        )
        assert rc == 0

    def test_validate_all_algorithms(self, capsys):
        rc = main(
            ["validate", "--nranks", "8", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("OK") >= 5  # every applicable algorithm passed
        assert "scatter_ring_opt" in out

    def test_validate_npof2_skips_rdbl(self, capsys):
        rc = main(
            ["validate", "--nranks", "9", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipped (needs pof2)" in out
