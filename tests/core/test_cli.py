"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.nranks == 64 and args.nbytes == "1MiB"
        assert args.machine == "hornet"

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--machine", "summit"])


class TestCommands:
    def test_compare_output(self, capsys):
        rc = main(["compare", "--nranks", "8", "--nodes", "2", "--nbytes", "256KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=8" in out and "MB/s" in out

    def test_sweep_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB,128KiB",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "64KiB" in out and "improvement" in out
        assert "cache:" in out  # stats line when caching is enabled

    def test_sweep_no_cache_and_jobs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB,128KiB",
                "--jobs",
                "2",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "improvement" in out
        assert "cache:" not in out
        assert not (tmp_path / "sweep-records.jsonl").exists()

    def test_sweep_warm_cache_rerun(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--nranks",
            "8",
            "--nodes",
            "2",
            "--sizes",
            "64KiB",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "2 hits / 0 misses" in capsys.readouterr().out

    def test_figure_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        rc = main(["figure", "--id", "fig6a", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 6(a)" in out and "improvement" in out

    def test_cache_report_and_clear(self, capsys, tmp_path):
        main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "2 record(s)" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_traffic_output(self, capsys):
        rc = main(["traffic", "--procs", "8,10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "56" in out and "44" in out and "90" in out and "75" in out

    def test_laki_preset(self, capsys):
        rc = main(
            ["compare", "--machine", "laki", "--nranks", "8", "--nbytes", "128KiB"]
        )
        assert rc == 0
        assert "P=8" in capsys.readouterr().out

    def test_round_robin_placement(self, capsys):
        rc = main(
            [
                "compare",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--placement",
                "round_robin",
            ]
        )
        assert rc == 0

    def test_validate_all_algorithms(self, capsys):
        rc = main(
            ["validate", "--nranks", "8", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("OK") >= 5  # every applicable algorithm passed
        assert "scatter_ring_opt" in out

    def test_validate_npof2_skips_rdbl(self, capsys):
        rc = main(
            ["validate", "--nranks", "9", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipped (needs pof2)" in out


class TestVerifyCommand:
    def test_native_p8_reports_12_redundant(self, capsys):
        rc = main(["verify", "--collective", "bcast_native", "--nranks", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "12" in out and "OK" in out
        assert "1/1 schedule(s) verified" in out

    def test_opt_p8_reports_zero_redundant(self, capsys):
        rc = main(["verify", "--collective", "bcast_opt", "--nranks", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bcast_opt" in out and "OK" in out

    def test_all_collectives_multiple_p(self, capsys):
        rc = main(["verify", "--nranks", "4,5", "--nbytes", "4KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bcast_native" in out and "allgather_ring" in out
        # pof2-only collectives appear for P=4 but are skipped at P=5.
        assert out.count("bcast_rdbl") == 1

    def test_json_output(self, capsys):
        import json

        rc = main(
            ["verify", "--collective", "bcast_opt", "--nranks", "8", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data[0]["collective"] == "bcast_opt"
        assert data[0]["redundant_count"] == 0 and data[0]["ok"] is True

    def test_strict_mode_fails_on_hazards(self, capsys):
        rc = main(
            ["verify", "--collective", "bcast_native", "--nranks", "8", "--strict"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out

    def test_unknown_collective_exits_two(self, capsys):
        rc = main(["verify", "--collective", "nope", "--nranks", "8"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_no_rendezvous_skips_column(self, capsys):
        rc = main(
            [
                "verify",
                "--collective",
                "bcast_opt",
                "--nranks",
                "4",
                "--no-rendezvous",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "safe" not in out

    def test_mc_pass_makes_strict_hazards_benign(self, capsys):
        rc = main(
            [
                "verify",
                "--collective",
                "bcast_native",
                "--nranks",
                "8",
                "--strict",
                "--mc",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out


class TestMcCommand:
    def test_single_point_ok(self, capsys):
        rc = main(["mc", "--collective", "bcast_opt", "--nranks", "4,6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: OK" in out
        assert "1 interleaving(s)" in out

    def test_json_output(self, capsys):
        import json

        rc = main(
            ["mc", "--collective", "bcast_opt", "--nranks", "6", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data[0]["collective"] == "bcast_opt"
        assert data[0]["executions"] == 1 and data[0]["ok"] is True

    def test_unknown_collective_exits_two(self, capsys):
        rc = main(["mc", "--collective", "nope", "--nranks", "4"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_unsupported_rank_count_exits_two(self, capsys):
        rc = main(["mc", "--collective", "bcast_rdbl", "--nranks", "6"])
        assert rc == 2

    def test_budget_truncation_fails_only_in_strict(self, capsys):
        args = ["mc", "--collective", "bcast_opt", "--nranks", "6",
                "--max-states", "5"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--strict"]) == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_fault_plan_flags(self, capsys):
        rc = main(
            ["mc", "--collective", "bcast_opt", "--nranks", "4",
             "--drop-p", "0.3", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "plan=cli" in out

    def test_broken_fixture_exits_nonzero_with_minimized_witness(self, capsys):
        from repro.analysis.verify import REGISTRY, CollectiveSpec
        from repro.mpi.ops import ANY_SOURCE

        def build(nranks, nbytes, root):
            def factory(ctx):
                def program():
                    if ctx.rank == 0:
                        yield from ctx.recv(ANY_SOURCE, 4, tag=7)
                        yield from ctx.recv(1, 4, tag=7)
                    else:
                        yield from ctx.send(0, 4, tag=7)

                return program()

            return factory

        REGISTRY["_broken_fixture"] = CollectiveSpec(
            name="_broken_fixture", build=build
        )
        try:
            rc = main(["mc", "--collective", "_broken_fixture", "--nranks", "3"])
            out = capsys.readouterr().out
            assert rc == 1
            assert "minimized deadlock witness (5 step(s))" in out
            assert "VIOLATION [deadlock]" in out
        finally:
            del REGISTRY["_broken_fixture"]

    def test_grid_strict_passes(self, capsys):
        rc = main(["mc", "--grid", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: OK" in out
        assert "bcast_opt" in out and "crash" in out


class TestLintCommand:
    def test_default_targets_clean(self, capsys):
        rc = main(["lint"])
        out = capsys.readouterr().out
        assert rc == 0 and "clean" in out

    def test_dirty_file_fails(self, capsys, tmp_path):
        f = tmp_path / "dirty.py"
        f.write_text("import time\nx = time.time()\n")
        rc = main(["lint", str(f)])
        out = capsys.readouterr().out
        assert rc == 1 and "wall-clock" in out


class TestCostCommand:
    def test_table_output(self, capsys):
        rc = main(["cost", "--collective", "bcast_opt", "--nranks", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bcast_opt" in out and "t_bound" in out

    def test_all_collectives_table(self, capsys):
        rc = main(["cost", "--nranks", "8", "--nbytes", "64KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bcast_native" in out and "allgather_ring" in out

    def test_json_output(self, capsys):
        import json

        rc = main(
            ["cost", "--collective", "bcast_native", "--nranks", "8", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data[0]["collective"] == "bcast_native"
        assert data[0]["transfers"] == 63
        assert data[0]["t_bound"] > 0

    def test_grid_strict_passes(self, capsys):
        rc = main(["cost", "--grid", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: OK" in out

    def test_grid_json(self, capsys):
        import json

        rc = main(["cost", "--grid", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["ok"] is True
        assert data["counts"]["symbolic"]["passed"] >= 1

    def test_unknown_collective_exits_two(self, capsys):
        rc = main(["cost", "--collective", "nope", "--nranks", "8"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err


class TestTraceCommand:
    def test_basic_output(self, capsys):
        rc = main(["trace", "--collective", "bcast_opt", "--nranks", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "makespan" in out and "ring" in out

    def test_critical_path_flag(self, capsys):
        rc = main(
            [
                "trace",
                "--collective",
                "bcast_opt",
                "--nranks",
                "8",
                "--critical-path",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "critical path:" in out and "hops" in out

    def test_chrome_export(self, capsys, tmp_path):
        import json

        target = tmp_path / "trace.json"
        rc = main(
            [
                "trace",
                "--collective",
                "barrier",
                "--nranks",
                "4",
                "--chrome",
                str(target),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0 and str(target) in out
        data = json.loads(target.read_text())
        assert data["traceEvents"]

    def test_unknown_collective_exits_two(self, capsys):
        rc = main(["trace", "--collective", "nope"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err


class TestVerifyCostPass:
    def test_cost_pass_reported(self, capsys):
        rc = main(["verify", "--collective", "bcast_opt", "--nranks", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cost-model consistency pass" in out and "OK" in out

    def test_no_cost_suppresses_pass(self, capsys):
        rc = main(
            ["verify", "--collective", "bcast_opt", "--nranks", "8", "--no-cost"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cost-model" not in out

    def test_json_schema_unchanged_by_cost_pass(self, capsys):
        import json

        rc = main(["verify", "--collective", "bcast_opt", "--nranks", "8", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert isinstance(data, list)
        assert "redundant_count" in data[0]


class TestReplayCommand:
    def test_single_point_ok(self, capsys):
        rc = main(["replay", "--collective", "bcast_opt", "--nranks", "13",
                   "--nbytes", "12KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bitwise" in out and "OK" in out and "verdict: OK" in out

    def test_unknown_collective_exits_two(self, capsys):
        rc = main(["replay", "--collective", "nope"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_unsupported_rank_count_exits_two(self, capsys):
        rc = main(["replay", "--collective", "bcast_rdbl", "--nranks", "7"])
        assert rc == 2
        assert "does not support" in capsys.readouterr().err

    def test_grid_strict_subset_via_json(self, capsys):
        import json

        rc = main(["replay", "--collective", "bcast_opt", "--nranks", "5",
                   "--nbytes", "512", "--strict", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["ok"] is True
        assert data["checks"][0]["status"] == "ok"


class TestBenchReportCommand:
    def test_prints_every_bench_file(self, capsys, tmp_path):
        import json

        for name, metric in (("BENCH_a.json", 1.5), ("BENCH_b.json", 2)):
            (tmp_path / name).write_text(json.dumps({
                "benchmark": f"micro {name}",
                "date": "2026-08-08",
                "speedup": metric,
                "notes": "details here",
            }))
        rc = main(["bench-report", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BENCH_a.json" in out and "BENCH_b.json" in out
        assert "speedup" in out and "details here" not in out

    def test_notes_flag_includes_notes(self, capsys, tmp_path):
        import json

        (tmp_path / "BENCH_x.json").write_text(json.dumps({
            "benchmark": "micro", "date": "d", "v": 1, "notes": "the notes",
        }))
        rc = main(["bench-report", "--dir", str(tmp_path), "--notes"])
        out = capsys.readouterr().out
        assert rc == 0 and "the notes" in out

    def test_empty_dir_exits_one(self, capsys, tmp_path):
        rc = main(["bench-report", "--dir", str(tmp_path)])
        assert rc == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_repo_root_bench_files_parse(self, capsys):
        # The real trajectory files shipped with the repo must render.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        rc = main(["bench-report", "--dir", str(root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BENCH_replay.json" in out
