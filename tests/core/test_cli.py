"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.nranks == 64 and args.nbytes == "1MiB"
        assert args.machine == "hornet"

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--machine", "summit"])


class TestCommands:
    def test_compare_output(self, capsys):
        rc = main(["compare", "--nranks", "8", "--nodes", "2", "--nbytes", "256KiB"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=8" in out and "MB/s" in out

    def test_sweep_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB,128KiB",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "64KiB" in out and "improvement" in out
        assert "cache:" in out  # stats line when caching is enabled

    def test_sweep_no_cache_and_jobs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB,128KiB",
                "--jobs",
                "2",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "improvement" in out
        assert "cache:" not in out
        assert not (tmp_path / "sweep-records.jsonl").exists()

    def test_sweep_warm_cache_rerun(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--nranks",
            "8",
            "--nodes",
            "2",
            "--sizes",
            "64KiB",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "2 hits / 0 misses" in capsys.readouterr().out

    def test_figure_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        rc = main(["figure", "--id", "fig6a", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 6(a)" in out and "improvement" in out

    def test_cache_report_and_clear(self, capsys, tmp_path):
        main(
            [
                "sweep",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--sizes",
                "64KiB",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "2 record(s)" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_traffic_output(self, capsys):
        rc = main(["traffic", "--procs", "8,10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "56" in out and "44" in out and "90" in out and "75" in out

    def test_laki_preset(self, capsys):
        rc = main(
            ["compare", "--machine", "laki", "--nranks", "8", "--nbytes", "128KiB"]
        )
        assert rc == 0
        assert "P=8" in capsys.readouterr().out

    def test_round_robin_placement(self, capsys):
        rc = main(
            [
                "compare",
                "--nranks",
                "8",
                "--nodes",
                "2",
                "--placement",
                "round_robin",
            ]
        )
        assert rc == 0

    def test_validate_all_algorithms(self, capsys):
        rc = main(
            ["validate", "--nranks", "8", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("OK") >= 5  # every applicable algorithm passed
        assert "scatter_ring_opt" in out

    def test_validate_npof2_skips_rdbl(self, capsys):
        rc = main(
            ["validate", "--nranks", "9", "--nodes", "2", "--nbytes", "16KiB"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipped (needs pof2)" in out
