"""Tests for the high-level simulate/compare API."""

import pytest

from repro.core import (
    available_algorithms,
    compare_bcast,
    simulate_bcast,
    validate_bcast,
)
from repro.errors import ConfigurationError
from repro.machine import Machine, hornet, ideal
from repro.sim import Trace


class TestSimulateBcast:
    def test_returns_run_record(self):
        rec = simulate_bcast(ideal(), 8, 4096, algorithm="scatter_ring_opt")
        assert rec.algorithm == "scatter_ring_opt"
        assert rec.nranks == 8 and rec.nbytes == 4096
        assert rec.time > 0
        assert rec.bandwidth == pytest.approx(4096 / rec.time)
        assert rec.machine == "ideal"

    def test_size_strings_accepted(self):
        rec = simulate_bcast(ideal(), 4, "4KiB")
        assert rec.nbytes == 4096

    def test_auto_selection_binomial(self):
        rec = simulate_bcast(ideal(), 16, 1024, algorithm="auto")
        assert rec.algorithm == "binomial"

    def test_auto_selection_ring(self):
        rec = simulate_bcast(ideal(), 16, 2**20, algorithm="auto")
        assert rec.algorithm == "scatter_ring_native"

    def test_auto_tuned_selection(self):
        rec = simulate_bcast(ideal(), 16, 2**20, algorithm="auto_tuned")
        assert rec.algorithm == "scatter_ring_opt"

    def test_smp_algorithms(self):
        for name in ("smp", "smp_opt"):
            rec = simulate_bcast(
                ideal(nodes=4, cores_per_node=4), 16, 65536, algorithm=name
            )
            assert rec.algorithm == name
            assert rec.messages > 0

    def test_machine_instance_accepted(self):
        m = Machine(ideal(), nranks=8)
        rec = simulate_bcast(m, 8, 4096)
        assert rec.nranks == 8

    def test_machine_rank_mismatch_rejected(self):
        m = Machine(ideal(), nranks=8)
        with pytest.raises(ConfigurationError):
            simulate_bcast(m, 16, 4096)

    def test_bad_spec_type_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_bcast("hornet", 8, 4096)

    def test_trace_capture(self):
        trace = Trace()
        simulate_bcast(ideal(), 4, 4096, algorithm="scatter_ring_opt", trace=trace)
        assert len(trace.by_kind("send_launch")) > 0

    def test_nonzero_root(self):
        rec = simulate_bcast(ideal(), 9, 9000, algorithm="scatter_ring_opt", root=4)
        assert rec.root == 4

    def test_counters_split_by_level(self):
        rec = simulate_bcast(ideal(nodes=4, cores_per_node=2), 8, 8192)
        assert rec.intra_messages + rec.inter_messages == rec.messages


class TestValidate:
    def test_validate_moves_real_bytes(self):
        rec = validate_bcast(ideal(), 10, 1000)
        assert rec.messages > 0

    @pytest.mark.parametrize(
        "name", ["binomial", "scatter_ring_native", "scatter_ring_opt", "smp_opt"]
    )
    def test_validate_all_algorithms(self, name):
        rec = simulate_bcast(
            ideal(nodes=4, cores_per_node=4),
            13,
            997,
            algorithm=name,
            validate=True,
            root=5,
        )
        assert rec.time > 0


class TestCompare:
    def test_compare_record_fields(self):
        cmp = compare_bcast(hornet(nodes=2), 16, "1MiB")
        assert cmp.native.algorithm == "scatter_ring_native"
        assert cmp.opt.algorithm == "scatter_ring_opt"
        assert cmp.speedup > 1.0  # contended machine: tuned wins
        assert cmp.bandwidth_improvement_pct > 0
        assert cmp.transfers_saved == 32  # P=16
        assert cmp.bytes_saved > 0

    def test_describe_is_readable(self):
        cmp = compare_bcast(ideal(), 8, 8192)
        text = cmp.describe()
        assert "P=8" in text and "MB/s" in text and "transfers saved" in text

    def test_speedup_consistent_with_improvement(self):
        cmp = compare_bcast(hornet(nodes=2), 16, "512KiB")
        assert cmp.bandwidth_improvement_pct == pytest.approx(
            (cmp.speedup - 1) * 100, rel=1e-6
        )


def test_available_algorithms_lists_everything():
    names = available_algorithms()
    for expected in (
        "binomial",
        "scatter_ring_native",
        "scatter_ring_opt",
        "scatter_rdbl",
        "auto",
        "auto_tuned",
        "smp",
        "smp_opt",
    ):
        assert expected in names
