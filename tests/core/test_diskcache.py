"""Tests for the persistent on-disk sweep-result cache."""

import json

import pytest

import repro.core.executor as executor_mod
from repro.core import (
    DiskCache,
    RunRecord,
    Sweep,
    SweepPoint,
    cache_key,
    default_cache_dir,
)
from repro.machine import ideal


def spec():
    return ideal(nodes=4, cores_per_node=8)


def sample_record(**kw):
    args = dict(
        algorithm="scatter_ring_opt",
        nranks=8,
        nbytes=65536,
        root=0,
        time=1.25e-4,
        messages=28,
        bytes_on_wire=131072,
        intra_messages=28,
        inter_messages=0,
        machine="ideal",
    )
    args.update(kw)
    return RunRecord(**args)


def small_sweep():
    return Sweep(
        spec(),
        sizes=["16KiB", "64KiB"],
        ranks=[4, 8],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
    )


class TestKey:
    def test_stable(self):
        p = SweepPoint("scatter_ring_opt", 8, 65536)
        assert cache_key(spec(), p) == cache_key(spec(), p)

    @pytest.mark.parametrize(
        "variant",
        [
            dict(point=SweepPoint("scatter_ring_native", 8, 65536)),
            dict(point=SweepPoint("scatter_ring_opt", 4, 65536)),
            dict(point=SweepPoint("scatter_ring_opt", 8, 16384)),
            dict(root=1),
            dict(placement="round_robin"),
            dict(salt="other-version"),
        ],
    )
    def test_any_input_changes_key(self, variant):
        base = dict(point=SweepPoint("scatter_ring_opt", 8, 65536))
        merged = {**base, **variant}
        assert cache_key(spec(), **merged) != cache_key(spec(), **base)

    def test_spec_changes_key(self):
        p = SweepPoint("scatter_ring_opt", 8, 65536)
        assert cache_key(spec(), p) != cache_key(spec().with_(nic_bw=1.0e9), p)

    def test_env_override_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("k") is None
        cache.put("k", sample_record())
        assert cache.get("k") == sample_record()
        s = cache.stats()
        assert (s.hits, s.misses, s.stores, s.entries) == (1, 1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        DiskCache(tmp_path).put("k", sample_record())
        reopened = DiskCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("k") == sample_record()

    def test_put_is_idempotent(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", sample_record())
        cache.put("k", sample_record(time=9.9))  # ignored: key already stored
        assert cache.get("k").time == 1.25e-4
        assert cache.stats().stores == 1

    def test_invalidate(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", sample_record())
        cache.put("b", sample_record(nbytes=16384))
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert not cache.file.exists()
        assert len(DiskCache(tmp_path)) == 0

    def test_corrupt_lines_skipped(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("good", sample_record())
        with open(cache.file, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write(json.dumps({"wrong": "shape"}) + "\n")
        reopened = DiskCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("good") == sample_record()


class TestSweepIntegration:
    def test_warm_cache_skips_all_simulation(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        first = small_sweep().run(cache=cache)
        assert cache.stats().stores == 8

        calls = []
        real = executor_mod.simulate_bcast

        def counting(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        monkeypatch.setattr(executor_mod, "simulate_bcast", counting)
        warm_cache = DiskCache(tmp_path)
        second = small_sweep().run(cache=warm_cache)
        assert calls == []  # zero simulate_bcast calls on a warm cache
        assert second == first
        s = warm_cache.stats()
        assert (s.hits, s.misses) == (8, 0)

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        parallel = small_sweep().run(jobs=4, cache=cache)
        assert cache.stats().stores == 8
        assert small_sweep().run(jobs=1) == parallel
