"""Tests for the sharded DiskCache layout: concurrency + legacy migration.

The single-file JSON-lines cache became ``shards/<xx>.jsonl`` so many
processes (CLI clients, service workers) can share one cache directory.
These tests cover what the layout promises: flock-protected appends lose
nothing under multi-process contention, readers pick up other writers'
records, and pre-sharding caches keep working unchanged.
"""

import dataclasses
import json
import multiprocessing

from repro.core.diskcache import DiskCache, _LEGACY_FILENAME
from repro.core.report import RunRecord


def make_record(i: int) -> RunRecord:
    return RunRecord(
        algorithm=f"algo{i}",
        nranks=8,
        nbytes=1024 + i,
        root=0,
        time=1e-5 * (i + 1),
        messages=i,
        bytes_on_wire=2048 + i,
        intra_messages=i,
        inter_messages=0,
        machine="test",
    )


def make_key(i: int, prefix: str = "") -> str:
    """A 64-hex-char key; ``prefix`` pins the shard it lands in."""
    body = f"{i:x}".rjust(64 - len(prefix), "0")
    return (prefix + body)[:64]


class TestShardedLayout:
    def test_put_creates_prefix_shard(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(make_key(1, "ab"), make_record(1))
        assert (tmp_path / "shards" / "ab.jsonl").exists()
        assert not (tmp_path / _LEGACY_FILENAME).exists()

    def test_round_trip_across_instances(self, tmp_path):
        writer = DiskCache(tmp_path)
        keys = [make_key(i) for i in range(20)]
        for i, key in enumerate(keys):
            writer.put(key, make_record(i))
        reader = DiskCache(tmp_path)
        assert len(reader) == 20
        for i, key in enumerate(keys):
            assert reader.get(key) == make_record(i)

    def test_reader_sees_later_writer_same_shard(self, tmp_path):
        """A loaded shard is refreshed when another process appends."""
        reader = DiskCache(tmp_path)
        key_a, key_b = make_key(1, "aa"), make_key(2, "aa")
        assert reader.get(key_a) is None  # shard "aa" now loaded (empty)
        writer = DiskCache(tmp_path)
        writer.put(key_a, make_record(1))
        writer.put(key_b, make_record(2))
        assert reader.get(key_a) == make_record(1)
        assert reader.get(key_b) == make_record(2)

    def test_torn_line_skipped(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = make_key(3, "cc")
        cache.put(key, make_record(3))
        shard = tmp_path / "shards" / "cc.jsonl"
        with open(shard, "a", encoding="utf-8") as fh:
            fh.write('{"key": "cc1234", "record": {"algorithm": "trunc')
        reader = DiskCache(tmp_path)
        assert reader.get(key) == make_record(3)
        assert len(reader) == 1

    def test_invalidate_removes_shards(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(5):
            cache.put(make_key(i), make_record(i))
        assert cache.invalidate() == 5
        assert len(DiskCache(tmp_path)) == 0
        assert not (tmp_path / "shards").is_dir()


def _stress_writer(cache_dir: str, writer_id: int, count: int) -> None:
    """Child-process body: hammer one shard plus scattered shards."""
    cache = DiskCache(cache_dir)
    for i in range(count):
        # Half the keys share shard "ee" to force flock contention, half
        # spread by writer so the cross-shard path is exercised too.
        if i % 2 == 0:
            key = make_key(writer_id * 10_000 + i, "ee")
        else:
            key = make_key(writer_id * 10_000 + i, f"{writer_id:02x}")
        cache.put(key, make_record(writer_id * 10_000 + i))


class TestConcurrentWriters:
    def test_no_lost_or_torn_records(self, tmp_path):
        writers, per_writer = 4, 40
        procs = [
            multiprocessing.Process(
                target=_stress_writer, args=(str(tmp_path), w, per_writer)
            )
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = DiskCache(tmp_path)
        assert len(cache) == writers * per_writer
        for w in range(writers):
            for i in range(per_writer):
                n = w * 10_000 + i
                prefix = "ee" if i % 2 == 0 else f"{w:02x}"
                rec = cache.get(make_key(n, prefix))
                assert rec == make_record(n), (w, i)
        # Every shard line parses: flock kept appends atomic (and every
        # concurrently-appended line carries its integrity checksum).
        for shard in (tmp_path / "shards").glob("*.jsonl"):
            for line in shard.read_text(encoding="utf-8").splitlines():
                obj = json.loads(line)
                assert set(obj) == {"key", "record", "sum"}
        assert DiskCache(tmp_path).fsck().ok


class TestLegacyMigration:
    def _write_legacy(self, tmp_path, count: int) -> list:
        keys = [make_key(i) for i in range(count)]
        lines = [
            json.dumps(
                {"key": key, "record": dataclasses.asdict(make_record(i))},
                sort_keys=True,
            )
            for i, key in enumerate(keys)
        ]
        tmp_path.mkdir(parents=True, exist_ok=True)
        (tmp_path / _LEGACY_FILENAME).write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        return keys

    def test_legacy_read_through(self, tmp_path):
        keys = self._write_legacy(tmp_path, 6)
        cache = DiskCache(tmp_path)
        assert len(cache) == 6
        for i, key in enumerate(keys):
            assert cache.get(key) == make_record(i)
        # Reading never rewrites the legacy file.
        assert (tmp_path / _LEGACY_FILENAME).exists()

    def test_put_prefers_shards_but_respects_legacy(self, tmp_path):
        keys = self._write_legacy(tmp_path, 2)
        cache = DiskCache(tmp_path)
        cache.put(keys[0], make_record(0))  # already present: no-op
        assert cache.stats().stores == 0
        new_key = make_key(99)
        cache.put(new_key, make_record(99))
        assert (tmp_path / "shards").is_dir()
        assert len(DiskCache(tmp_path)) == 3

    def test_migrate_folds_and_unlinks(self, tmp_path):
        keys = self._write_legacy(tmp_path, 6)
        cache = DiskCache(tmp_path)
        assert cache.migrate() == 6
        assert not (tmp_path / _LEGACY_FILENAME).exists()
        fresh = DiskCache(tmp_path)
        assert len(fresh) == 6
        for i, key in enumerate(keys):
            assert fresh.get(key) == make_record(i)
        # Idempotent: a second migrate has nothing to do.
        assert fresh.migrate() == 0

    def test_migrate_empty_cache(self, tmp_path):
        assert DiskCache(tmp_path).migrate() == 0
