"""Tests for the parameter-sweep driver."""

import pytest

from repro.core import Sweep, SweepPoint
from repro.errors import ConfigurationError
from repro.machine import hornet, ideal


def small_sweep(**kw):
    args = dict(
        spec=ideal(nodes=4, cores_per_node=8),
        sizes=["16KiB", "64KiB"],
        ranks=[4, 8],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
    )
    args.update(kw)
    return Sweep(**args)


class TestSweep:
    def test_points_cross_product(self):
        sweep = small_sweep()
        assert len(sweep.points()) == 2 * 2 * 2

    def test_run_returns_all_records(self):
        sweep = small_sweep()
        records = sweep.run()
        assert len(records) == 8
        assert all(r.time > 0 for r in records)

    def test_cache_hits(self):
        sweep = small_sweep()
        r1 = sweep.record("scatter_ring_opt", 8, "16KiB")
        r2 = sweep.record("scatter_ring_opt", 8, "16KiB")
        assert r1 is r2  # memoised

    def test_series_shape(self):
        sweep = small_sweep()
        xs, ys = sweep.series("scatter_ring_opt", 8)
        assert xs == [16 * 1024, 64 * 1024]
        assert len(ys) == 2 and all(y > 0 for y in ys)

    def test_compare(self):
        sweep = small_sweep(spec=hornet(nodes=2))
        cmp = sweep.compare(8, "64KiB", "scatter_ring_native", "scatter_ring_opt")
        assert cmp.nranks == 8
        assert cmp.opt.time <= cmp.native.time * (1 + 1e-9)

    def test_peak_bandwidth(self):
        sweep = small_sweep()
        peak = sweep.peak_bandwidth("scatter_ring_opt", 8)
        _, ys = sweep.series("scatter_ring_opt", 8)
        assert peak == max(ys)

    def test_to_table_renders_rows(self):
        sweep = small_sweep(spec=hornet(nodes=2))
        table = sweep.to_table(
            8, "scatter_ring_native", "scatter_ring_opt", title="Fig test"
        )
        text = table.render()
        assert "16KiB" in text and "64KiB" in text
        assert "improvement" in text
        assert "Fig test" in text

    def test_progress_hook(self):
        sweep = small_sweep()
        seen = []
        sweep.run(progress=seen.append)
        assert len(seen) == 8
        assert isinstance(seen[0], SweepPoint)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            small_sweep(sizes=[])
        with pytest.raises(ConfigurationError):
            small_sweep(ranks=[])
        with pytest.raises(ConfigurationError):
            small_sweep(algorithms=[])
