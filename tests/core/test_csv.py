"""Tests for the sweep CSV export."""

import io

import pytest

from repro.core import Sweep
from repro.errors import ConfigurationError
from repro.machine import ideal


def tiny_sweep():
    return Sweep(
        ideal(nodes=2, cores_per_node=8),
        sizes=[4096, 8192],
        ranks=[4],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
    )


class TestCsv:
    def test_header_and_rows(self):
        text = tiny_sweep().to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("algorithm,nranks,nbytes,time_s,bandwidth_mib")
        assert len(lines) == 1 + 2 * 2  # header + algorithms x sizes

    def test_values_parse_back(self):
        sweep = tiny_sweep()
        text = sweep.to_csv()
        rows = [line.split(",") for line in text.strip().splitlines()[1:]]
        for row in rows:
            algo, nranks, nbytes, time_s = row[0], int(row[1]), int(row[2]), float(row[3])
            rec = sweep.record(algo, nranks, nbytes)
            # .9e keeps 10 significant digits: round-trips to <1e-9 rel.
            assert time_s == pytest.approx(rec.time, rel=1e-9)

    def test_time_format_is_stable_scientific(self):
        text = tiny_sweep().to_csv()
        for line in text.strip().splitlines()[1:]:
            time_col = line.split(",")[3]
            mantissa, _, exponent = time_col.partition("e")
            assert len(mantissa) == 11 and exponent  # d.ddddddddde±dd
            assert float(time_col) > 0

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "sweep.csv"
        tiny_sweep().to_csv(str(path))
        assert path.read_text().startswith("algorithm,")

    def test_write_to_fileobj(self):
        buf = io.StringIO()
        tiny_sweep().to_csv(buf)
        assert buf.getvalue().startswith("algorithm,")

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep().to_csv(42)

    def test_counts_split_sums(self):
        text = tiny_sweep().to_csv()
        for line in text.strip().splitlines()[1:]:
            cols = line.split(",")
            messages, intra, inter = int(cols[5]), int(cols[7]), int(cols[8])
            assert intra + inter == messages
