"""Tests for the sweep CSV export."""

import io

import pytest

from repro.core import Sweep
from repro.errors import ConfigurationError
from repro.machine import ideal


def tiny_sweep():
    return Sweep(
        ideal(nodes=2, cores_per_node=8),
        sizes=[4096, 8192],
        ranks=[4],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
    )


class TestCsv:
    def test_header_and_rows(self):
        text = tiny_sweep().to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("algorithm,nranks,nbytes,time_s,bandwidth_mib")
        assert len(lines) == 1 + 2 * 2  # header + algorithms x sizes

    def test_values_parse_back(self):
        sweep = tiny_sweep()
        text = sweep.to_csv()
        rows = [line.split(",") for line in text.strip().splitlines()[1:]]
        for row in rows:
            algo, nranks, nbytes, time_s = row[0], int(row[1]), int(row[2]), float(row[3])
            rec = sweep.record(algo, nranks, nbytes)
            # .9e keeps 10 significant digits: round-trips to <1e-9 rel.
            assert time_s == pytest.approx(rec.time, rel=1e-9)

    def test_time_format_is_stable_scientific(self):
        text = tiny_sweep().to_csv()
        for line in text.strip().splitlines()[1:]:
            time_col = line.split(",")[3]
            mantissa, _, exponent = time_col.partition("e")
            assert len(mantissa) == 11 and exponent  # d.ddddddddde±dd
            assert float(time_col) > 0

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "sweep.csv"
        tiny_sweep().to_csv(str(path))
        assert path.read_text().startswith("algorithm,")

    def test_write_to_fileobj(self):
        buf = io.StringIO()
        tiny_sweep().to_csv(buf)
        assert buf.getvalue().startswith("algorithm,")

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep().to_csv(42)

    def test_counts_split_sums(self):
        text = tiny_sweep().to_csv()
        for line in text.strip().splitlines()[1:]:
            cols = line.split(",")
            messages, intra, inter = int(cols[5]), int(cols[7]), int(cols[8])
            assert intra + inter == messages


class TestUniformEngineSchema:
    def test_engine_column_present(self):
        text = tiny_sweep().to_csv()
        lines = text.strip().splitlines()
        header = lines[0].split(",")
        assert header[-1] == "engine"
        for line in lines[1:]:
            assert line.split(",")[-1] in ("des", "replay")

    def test_mixed_engine_rows_share_schema(self, monkeypatch):
        # Rows produced by different engines must agree column-for-column:
        # same width, same header order, telemetry a given engine does not
        # collect rendered as zeros rather than dropped.
        from repro.sim.replay import ENGINE_ENV

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        replay_rows = tiny_sweep().to_csv().strip().splitlines()
        monkeypatch.setenv(ENGINE_ENV, "des")
        des_rows = tiny_sweep().to_csv().strip().splitlines()
        assert replay_rows[0] == des_rows[0]  # identical header
        n_cols = len(replay_rows[0].split(","))
        for rep_line, des_line in zip(replay_rows[1:], des_rows[1:]):
            rep_cols, des_cols = rep_line.split(","), des_line.split(",")
            assert len(rep_cols) == len(des_cols) == n_cols
            # engine-independent columns are bitwise identical
            assert rep_cols[:9] == des_cols[:9]
        assert {line.split(",")[-1] for line in replay_rows[1:]} == {"replay"}
        assert {line.split(",")[-1] for line in des_rows[1:]} == {"des"}

    def test_csv_row_covers_every_field(self):
        sweep = tiny_sweep()
        rec = sweep.record("scatter_ring_opt", 4, 4096)
        row = Sweep.csv_row(rec)
        assert tuple(row) == Sweep.CSV_FIELDS
        assert all(isinstance(v, str) for v in row.values())
