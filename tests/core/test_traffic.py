"""Tests for closed-form traffic accounting, cross-validated against the
extracted schedules and the paper's numbers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    measure_traffic,
    ring_bytes_native,
    ring_bytes_tuned,
    ring_transfers_native,
    ring_transfers_tuned,
    scatter_transfers,
    subtree_sum,
    total_transfers,
    transfers_saved,
)
from repro.errors import CollectiveError
from repro.machine import blocked


class TestClosedForms:
    def test_paper_p8(self):
        assert ring_transfers_native(8) == 56
        assert ring_transfers_tuned(8) == 44
        assert transfers_saved(8) == 12

    def test_paper_p10(self):
        assert ring_transfers_native(10) == 90
        assert ring_transfers_tuned(10) == 75
        assert transfers_saved(10) == 15

    def test_subtree_sum_pof2(self):
        # For pof2 P: S = P * (log2 P + 2) / 2.
        for logp in range(1, 9):
            P = 1 << logp
            assert subtree_sum(P) == P * (logp + 2) // 2

    def test_degenerate(self):
        assert ring_transfers_native(1) == 0
        assert ring_transfers_tuned(1) == 0
        assert transfers_saved(1) == 0
        assert total_transfers(1, tuned=True) == 0

    def test_validation(self):
        with pytest.raises(CollectiveError):
            ring_transfers_native(0)

    @given(P=st.integers(min_value=2, max_value=400))
    def test_tuned_strictly_fewer(self, P):
        assert ring_transfers_tuned(P) < ring_transfers_native(P)
        assert transfers_saved(P) >= P - 1  # the root's neighbour alone

    @given(P=st.integers(min_value=2, max_value=400))
    def test_savings_grow_with_p(self, P):
        # "the decrement ... will increase as the growing of the process
        # count P" (Section IV).
        assert transfers_saved(P + 1) > transfers_saved(P) - 2
        assert transfers_saved(2 * P) > transfers_saved(P)


class TestScatterTransfers:
    def test_structural(self):
        assert scatter_transfers(8) == 7
        assert scatter_transfers(1) == 0

    def test_zero_bytes_skips_everything(self):
        assert scatter_transfers(8, nbytes=0) == 0

    def test_tiny_buffer_skips_empty_subtrees(self):
        # 3 bytes over 8 ranks: only subtrees holding bytes receive.
        assert scatter_transfers(8, nbytes=3) == 2

    def test_full_buffer_hits_structural_count(self):
        assert scatter_transfers(8, nbytes=800) == 7


class TestRingBytes:
    def test_native_every_chunk_travels_p_minus_1(self):
        assert ring_bytes_native(8, 800) == 7 * 800

    def test_tuned_bytes_p8(self):
        # 12 skipped transfers x 100 bytes each.
        assert ring_bytes_tuned(8, 800) == 7 * 800 - 12 * 100

    @given(
        P=st.integers(min_value=2, max_value=64),
        nbytes=st.integers(min_value=0, max_value=10_000),
    )
    def test_tuned_bytes_bounded(self, P, nbytes):
        t = ring_bytes_tuned(P, nbytes)
        n = ring_bytes_native(P, nbytes)
        assert 0 <= t <= n


class TestMeasuredAgreement:
    @pytest.mark.parametrize("P", [2, 3, 8, 10, 17, 33])
    def test_schedule_matches_closed_form(self, P):
        nbytes = 128 * P
        native = measure_traffic("scatter_ring_native", P, nbytes)
        tuned = measure_traffic("scatter_ring_opt", P, nbytes)
        assert native.ring_transfers == ring_transfers_native(P)
        assert tuned.ring_transfers == ring_transfers_tuned(P)
        assert native.scatter_transfers == scatter_transfers(P, nbytes)
        assert native.transfers == total_transfers(P, tuned=False, nbytes=nbytes)
        assert tuned.transfers == total_transfers(P, tuned=True, nbytes=nbytes)

    @pytest.mark.parametrize("P,nbytes", [(8, 800), (10, 1000), (13, 997)])
    def test_wire_bytes_match(self, P, nbytes):
        native = measure_traffic("scatter_ring_native", P, nbytes)
        tuned = measure_traffic("scatter_ring_opt", P, nbytes)
        scatter_bytes = native.wire_bytes - ring_bytes_native(P, nbytes)
        assert scatter_bytes >= 0
        assert tuned.wire_bytes - scatter_bytes == ring_bytes_tuned(P, nbytes)

    def test_levels_with_placement(self):
        placement = blocked(8, nodes=2, cores_per_node=4)
        rep = measure_traffic("scatter_ring_opt", 8, 800, placement=placement)
        assert rep.intra + rep.inter == rep.transfers
        assert rep.inter > 0  # spans two nodes

    def test_nonzero_root(self):
        rep0 = measure_traffic("scatter_ring_opt", 10, 1000, root=0)
        rep3 = measure_traffic("scatter_ring_opt", 10, 1000, root=3)
        assert rep0.transfers == rep3.transfers
        assert rep0.wire_bytes == rep3.wire_bytes
