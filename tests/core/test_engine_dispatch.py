"""Tests for the engine auto-dispatch layer (core.api + REPRO_ENGINE)."""

import pytest

from repro.core import simulate_bcast
from repro.core.api import _REPLAY_MEMO, simulate_allgather
from repro.core.diskcache import cache_key
from repro.core.sweep import SweepPoint
from repro.errors import ConfigurationError
from repro.machine import hornet, ideal
from repro.sim.faults import FaultPlan
from repro.sim.replay import ENGINE_ENV


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)


def run(algorithm="scatter_ring_opt", nranks=9, nbytes=12288, **kw):
    return simulate_bcast(hornet(), nranks, nbytes, algorithm=algorithm, **kw)


class TestDispatch:
    def test_auto_uses_replay_for_static_runs(self):
        rec = run()
        assert rec.engine == "replay"
        assert rec.solver_mode == "replay"

    def test_des_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "des")
        rec = run()
        assert rec.engine == "des"

    def test_engines_agree_bitwise(self, monkeypatch):
        rep = run()
        monkeypatch.setenv(ENGINE_ENV, "des")
        des = run()
        assert rep.time == des.time
        assert (rep.messages, rep.bytes_on_wire) == (des.messages, des.bytes_on_wire)
        assert (rep.intra_messages, rep.inter_messages) == (
            des.intra_messages,
            des.inter_messages,
        )

    def test_iterated_run_with_barrier_replays(self, monkeypatch):
        rep = run(iterations=3)
        assert rep.engine == "replay"
        monkeypatch.setenv(ENGINE_ENV, "des")
        des = run(iterations=3)
        assert rep.time == des.time and rep.messages == des.messages

    def test_faults_fall_back_to_des(self):
        plan = FaultPlan.uniform(seed=1, drop_p=0.1)
        rec = run(algorithm="binomial", nranks=5, nbytes=2048, faults=plan)
        assert rec.engine == "des"

    def test_zero_fault_plan_still_replays(self):
        rec = run(faults=FaultPlan.none(seed=0))
        assert rec.engine == "replay"

    def test_validate_falls_back_to_des(self):
        rec = run(algorithm="binomial", nranks=5, nbytes=2048, validate=True)
        assert rec.engine == "des"

    def test_jitter_spec_falls_back_to_des(self):
        rec = simulate_bcast(
            ideal(jitter_sigma=1e-8), 5, 4096, algorithm="binomial"
        )
        assert rec.engine == "des"

    def test_forced_replay_on_dynamic_run_raises(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "replay")
        with pytest.raises(ConfigurationError, match="static"):
            run(validate=True)

    def test_forced_replay_on_static_run_works(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "replay")
        assert run().engine == "replay"

    def test_allgather_dispatches(self, monkeypatch):
        rep = simulate_allgather(hornet(), 8, 4096, algorithm="ring")
        assert rep.engine == "replay"
        monkeypatch.setenv(ENGINE_ENV, "des")
        des = simulate_allgather(hornet(), 8, 4096, algorithm="ring")
        assert des.engine == "des" and rep.time == des.time

    def test_reference_solver_routes_to_des(self, monkeypatch):
        # REPRO_SOLVER=reference is the solver differential escape
        # hatch; replay has its own data plane, so auto honours the
        # solver request and a forced replay refuses it loudly.
        monkeypatch.setenv("REPRO_SOLVER", "reference")
        rec = run()
        assert rec.engine == "des" and rec.solver_mode == "reference"
        monkeypatch.setenv(ENGINE_ENV, "replay")
        with pytest.raises(ConfigurationError, match="REPRO_SOLVER"):
            run()

    def test_compiled_schedule_memoised(self):
        _REPLAY_MEMO.clear()
        run()
        size_after_first = len(_REPLAY_MEMO)
        run()
        assert size_after_first == 1
        assert len(_REPLAY_MEMO) == 1


class TestCacheKey:
    def test_engine_mode_enters_cache_key(self, monkeypatch):
        point = SweepPoint("scatter_ring_opt", 8, 4096)
        auto = cache_key(hornet(), point)
        monkeypatch.setenv(ENGINE_ENV, "des")
        des = cache_key(hornet(), point)
        monkeypatch.setenv(ENGINE_ENV, "replay")
        forced = cache_key(hornet(), point)
        assert len({auto, des, forced}) == 3
