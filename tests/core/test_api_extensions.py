"""Tests for the measurement-loop, allgather API and jitter extensions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compare_bcast, simulate_allgather, simulate_bcast
from repro.errors import ConfigurationError
from repro.machine import Machine, hornet, ideal
from repro.mpi import Job, RealBuffer


class TestIterations:
    def test_per_iteration_time_close_to_single(self):
        spec = ideal(nodes=2, cores_per_node=8)
        one = simulate_bcast(spec, 8, 65536, algorithm="scatter_ring_opt")
        many = simulate_bcast(
            spec, 8, 65536, algorithm="scatter_ring_opt", iterations=10
        )
        # Barrier overhead only: within a few percent for 64KiB messages.
        assert many.time == pytest.approx(one.time, rel=0.10)
        assert many.time >= one.time  # barrier adds, never removes

    def test_message_counts_are_per_iteration(self):
        spec = ideal(nodes=2, cores_per_node=8)
        one = simulate_bcast(spec, 8, 65536, algorithm="scatter_ring_opt")
        many = simulate_bcast(
            spec, 8, 65536, algorithm="scatter_ring_opt", iterations=4
        )
        # Per-iteration messages = bcast msgs + barrier tokens (8*3).
        assert many.messages == one.messages + 8 * 3
        assert many.bytes_on_wire == one.bytes_on_wire  # tokens carry 0 bytes

    def test_validate_with_iterations(self):
        spec = ideal(nodes=2, cores_per_node=8)
        rec = simulate_bcast(
            spec, 9, 900, algorithm="scatter_ring_opt", validate=True, iterations=3
        )
        assert rec.time > 0

    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            simulate_bcast(ideal(), 4, 100, iterations=0)


class TestSimulateAllgather:
    @pytest.mark.parametrize("algo", ["ring", "rdbl", "bruck"])
    def test_algorithms_run(self, algo):
        rec = simulate_allgather(ideal(), 8, "16KiB", algorithm=algo)
        assert rec.algorithm == f"allgather_{algo}"
        assert rec.nbytes == 8 * 16 * 1024
        assert rec.time > 0

    def test_bruck_handles_npof2(self):
        rec = simulate_allgather(ideal(), 10, 4096, algorithm="bruck")
        assert rec.messages > 0

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            simulate_allgather(ideal(), 8, 1024, algorithm="hypercube")

    def test_ring_vs_bruck_tradeoff(self):
        """Bruck: fewer steps (latency); ring: no wrapped double-messages
        and better per-step bandwidth shape. For tiny blocks at large P,
        Bruck must win."""
        spec = ideal(nodes=4, cores_per_node=16)
        ring = simulate_allgather(spec, 64, 64, algorithm="ring")
        bruck = simulate_allgather(spec, 64, 64, algorithm="bruck")
        assert bruck.time < ring.time


class TestJitter:
    def test_jitter_reproducible_by_seed(self):
        spec = hornet(nodes=2, jitter_sigma=0.2, seed=42)
        t1 = simulate_bcast(spec, 16, 65536, algorithm="scatter_ring_opt").time
        t2 = simulate_bcast(spec, 16, 65536, algorithm="scatter_ring_opt").time
        assert t1 == t2

    def test_different_seed_different_time(self):
        base = dict(nodes=2, jitter_sigma=0.2)
        t1 = simulate_bcast(
            hornet(seed=1, **base), 16, 65536, algorithm="scatter_ring_opt"
        ).time
        t2 = simulate_bcast(
            hornet(seed=2, **base), 16, 65536, algorithm="scatter_ring_opt"
        ).time
        assert t1 != t2

    def test_zero_sigma_is_bitwise_deterministic_baseline(self):
        spec_nojit = hornet(nodes=2, seed=7)
        spec_jit0 = hornet(nodes=2, jitter_sigma=0.0, seed=99)
        t1 = simulate_bcast(spec_nojit, 8, 65536).time
        t2 = simulate_bcast(spec_jit0, 8, 65536).time
        assert t1 == t2

    def test_data_correct_under_jitter(self):
        spec = hornet(nodes=2, jitter_sigma=0.3, seed=3)
        rec = simulate_bcast(
            spec, 10, 10_000, algorithm="scatter_ring_opt", validate=True
        )
        assert rec.time > 0


@settings(deadline=None, max_examples=15)
@given(
    P=st.integers(min_value=2, max_value=16),
    data=st.data(),
)
def test_property_end_to_end_des_bcast(P, data):
    """Random machine shapes x random roots/sizes: the timed DES with
    real buffers always delivers the full payload everywhere, for both
    ring designs, and the tuned one is never slower."""
    cores = data.draw(st.integers(min_value=1, max_value=8))
    nodes = -(-P // cores)
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    nbytes = data.draw(st.integers(min_value=1, max_value=5000))
    spec = hornet(nodes=nodes, cores_per_node=cores)
    times = {}
    for algo in ("scatter_ring_native", "scatter_ring_opt"):
        rec = simulate_bcast(
            spec, P, nbytes, algorithm=algo, root=root, validate=True
        )
        times[algo] = rec.time
    assert times["scatter_ring_opt"] <= times["scatter_ring_native"] * (1 + 1e-9)
