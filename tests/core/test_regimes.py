"""Unit tests for the regime-map machinery."""

import pytest

from repro.core import RegimeCell, regime_map, selector_agreement
from repro.errors import ConfigurationError
from repro.machine import hornet, ideal


class TestRegimeMap:
    def test_small_grid(self):
        cells = regime_map(
            hornet(nodes=2), ranks=[8], sizes=[2048, 2**20]
        )
        assert len(cells) == 2
        small, large = cells
        assert small.winner == "binomial"
        assert large.winner.startswith("scatter_ring")
        assert large.winner_time == large.times[large.winner]

    def test_npof2_skips_rdbl(self):
        (cell,) = regime_map(hornet(nodes=2), ranks=[9], sizes=[2**19])
        assert "scatter_rdbl" not in cell.times
        assert set(cell.times) == {
            "binomial",
            "scatter_ring_native",
            "scatter_ring_opt",
        }

    def test_custom_candidates(self):
        (cell,) = regime_map(
            ideal(),
            ranks=[4],
            sizes=[4096],
            candidates=["binomial", "chain"],
        )
        assert set(cell.times) == {"binomial", "chain"}

    def test_size_strings(self):
        (cell,) = regime_map(ideal(), ranks=[4], sizes=["4KiB"])
        assert cell.nbytes == 4096

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            regime_map(ideal(), ranks=[], sizes=[1])
        with pytest.raises(ConfigurationError):
            regime_map(ideal(), ranks=[4], sizes=[])


class TestAgreement:
    def _cell(self, winner, mpich):
        return RegimeCell(
            nranks=8,
            nbytes=1024,
            winner=winner,
            winner_time=1.0,
            times={winner: 1.0},
            mpich_choice=mpich,
        )

    def test_exact_match(self):
        assert self._cell("binomial", "binomial").selector_agrees

    def test_family_match_ignores_tuning(self):
        assert self._cell("scatter_ring_native", "scatter_ring_opt").selector_agrees
        assert self._cell("scatter_ring_opt", "scatter_ring_native").selector_agrees

    def test_family_mismatch(self):
        assert not self._cell("binomial", "scatter_rdbl").selector_agrees

    def test_fraction(self):
        cells = [
            self._cell("binomial", "binomial"),
            self._cell("binomial", "scatter_rdbl"),
        ]
        assert selector_agreement(cells) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            selector_agreement([])
