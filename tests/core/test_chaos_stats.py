"""Chaos telemetry through the user-facing API, sweeps, cache and CLI."""

import csv
import io

from repro.__main__ import main
from repro.core import Sweep, simulate_bcast
from repro.core.diskcache import cache_key
from repro.core.sweep import SweepPoint
from repro.machine import ideal
from repro.sim import FaultPlan


DROPPY = FaultPlan.uniform(seed=0, drop_p=0.2, name="droppy")


class TestRunRecord:
    def test_chaos_counters_populated(self):
        rec = simulate_bcast(
            ideal(), 5, 4096, algorithm="scatter_ring_opt", faults=DROPPY
        )
        assert rec.has_chaos
        assert rec.drops_injected > 0 and rec.retrans_messages > 0
        assert rec.ack_messages > 0 and rec.timeouts > 0

    def test_fault_free_record_reports_no_chaos(self):
        rec = simulate_bcast(ideal(), 5, 4096, algorithm="scatter_ring_opt")
        assert not rec.has_chaos
        assert rec.retrans_messages == rec.ack_messages == 0

    def test_zero_plan_matches_fault_free_run(self):
        clean = simulate_bcast(ideal(), 5, 4096, algorithm="scatter_ring_opt")
        zero = simulate_bcast(
            ideal(), 5, 4096, algorithm="scatter_ring_opt",
            faults=FaultPlan.none(),
        )
        assert zero.time == clean.time
        assert (zero.messages, zero.bytes_on_wire) == (
            clean.messages, clean.bytes_on_wire,
        )
        assert not zero.has_chaos


class TestCacheKeys:
    POINT = SweepPoint("scatter_ring_opt", 5, 4096)

    def test_fault_plan_separates_cache_entries(self):
        spec = ideal()
        base = cache_key(spec, self.POINT)
        faulty = cache_key(spec, self.POINT, faults=DROPPY)
        other_seed = cache_key(
            spec,
            self.POINT,
            faults=FaultPlan.uniform(seed=1, drop_p=0.2, name="droppy"),
        )
        assert len({base, faulty, other_seed}) == 3

    def test_equal_plans_share_a_key(self):
        spec = ideal()
        twin = FaultPlan.uniform(seed=0, drop_p=0.2, name="droppy")
        assert cache_key(spec, self.POINT, faults=DROPPY) == cache_key(
            spec, self.POINT, faults=twin
        )

    def test_reliable_flag_separates_entries(self):
        spec = ideal()
        assert cache_key(spec, self.POINT) != cache_key(
            spec, self.POINT, reliable=True
        )


class TestSweepCsv:
    def test_chaos_columns_are_appended(self):
        # Append-only CSV policy: new fields go at the end, old readers
        # keep their column positions ("engine" was appended after).
        assert Sweep.CSV_FIELDS[-6:] == (
            "retrans_messages",
            "retrans_bytes",
            "ack_messages",
            "ack_bytes",
            "timeouts",
            "engine",
        )

    def test_to_csv_carries_telemetry(self):
        sweep = Sweep(
            ideal(),
            sizes=[4096],
            ranks=[5],
            algorithms=["scatter_ring_opt"],
            faults=DROPPY,
        )
        text = sweep.to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert int(rows[0]["retrans_messages"]) > 0
        assert int(rows[0]["ack_messages"]) > 0


class TestCli:
    def test_chaos_single_point(self, capsys):
        rc = main(
            ["chaos", "--collective", "bcast_opt", "--nranks", "5", "--strict"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "selector_degradation" in out and "verdict: OK" in out

    def test_chaos_json(self, capsys):
        import json

        rc = main(
            ["chaos", "--collective", "bcast_binomial", "--nranks", "5",
             "--json", "--strict"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0 and data["ok"] is True

    def test_chaos_unknown_collective(self, capsys):
        rc = main(["chaos", "--collective", "nope"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_compare_chaos_stats(self, capsys):
        rc = main(
            ["compare", "--nranks", "5", "--nbytes", "16KiB",
             "--fault-drop", "0.1", "--chaos-stats"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos telemetry" in out and "retrans" in out
