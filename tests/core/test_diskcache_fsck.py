"""Cache integrity: per-line checksums, torn-shard detection and
``fsck`` repair must turn silent corruption into loud, fixable state."""

import json

from repro.core import DiskCache, RunRecord, cache_key
from repro.core.sweep import SweepPoint
from repro.machine import ideal


def spec():
    return ideal(nodes=4, cores_per_node=8)


def sample_record(**kw):
    args = dict(
        algorithm="scatter_ring_opt",
        nranks=8,
        nbytes=65536,
        root=0,
        time=1.25e-4,
        messages=28,
        bytes_on_wire=131072,
        intra_messages=28,
        inter_messages=0,
        machine="ideal",
    )
    args.update(kw)
    return RunRecord(**args)


def populate(cache, n=4):
    keys = []
    for i in range(n):
        point = SweepPoint("scatter_ring_opt", 8, 1024 * (i + 1))
        key = cache_key(spec(), point)
        cache.put(key, sample_record(nbytes=point.nbytes))
        keys.append(key)
    return keys


class TestFsck:
    def test_clean_cache_reports_ok(self, tmp_path):
        cache = DiskCache(tmp_path)
        populate(cache)
        report = cache.fsck()
        assert report.ok
        assert report.corrupt == 0
        assert report.entries == 4
        assert "clean" in report.describe()

    def test_torn_shard_detected(self, tmp_path):
        cache = DiskCache(tmp_path)
        populate(cache)
        shard = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-19])  # tear mid-record
        report = DiskCache(tmp_path).fsck()
        assert not report.ok
        assert report.corrupt == 1
        assert "CORRUPT" in report.describe()

    def test_bit_rot_detected_by_checksum(self, tmp_path):
        cache = DiskCache(tmp_path)
        populate(cache, n=1)
        shard = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        line = json.loads(shard.read_text())
        line["record"]["time"] = 9.9  # flip a value, keep valid JSON
        shard.write_text(json.dumps(line) + "\n")
        report = DiskCache(tmp_path).fsck()
        assert not report.ok
        assert report.corrupt == 1

    def test_repair_drops_corrupt_lines_and_keeps_the_rest(self, tmp_path):
        cache = DiskCache(tmp_path)
        keys = populate(cache)
        shard = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-19])
        fresh = DiskCache(tmp_path)
        report = fresh.fsck(repair=True)
        assert report.repaired == 1
        assert DiskCache(tmp_path).fsck().ok
        # Exactly one record was lost to the tear; the others survive
        # and the lost one reads as a plain miss, not an error.
        survivors = sum(
            1 for k in keys if DiskCache(tmp_path).get(k) is not None
        )
        assert survivors == 3

    def test_corrupt_line_skipped_on_normal_read(self, tmp_path):
        cache = DiskCache(tmp_path)
        keys = populate(cache)
        shard = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-19])
        fresh = DiskCache(tmp_path)
        # Reads never crash on a torn shard; the torn key is a miss.
        hits = [k for k in keys if fresh.get(k) is not None]
        assert len(hits) == 3

    def test_pre_checksum_lines_still_readable(self, tmp_path):
        cache = DiskCache(tmp_path)
        (keys,) = [populate(cache, n=1)]
        shard = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        line = json.loads(shard.read_text())
        line.pop("sum")  # a line written before checksums existed
        shard.write_text(json.dumps(line) + "\n")
        fresh = DiskCache(tmp_path)
        assert fresh.get(keys[0]) is not None
        report = fresh.fsck()
        assert report.ok
        assert report.unsummed == 1
