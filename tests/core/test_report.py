"""Tests for the result record types (RunRecord / ComparisonRecord)."""

import pytest

from repro.core.report import MIB_S, ComparisonRecord, RunRecord


def record(algorithm="scatter_ring_opt", time=0.001, nbytes=1 << 20, **kw):
    defaults = dict(
        nranks=16,
        root=0,
        messages=51,
        bytes_on_wire=2 << 20,
        intra_messages=40,
        inter_messages=11,
        machine="hornet",
    )
    defaults.update(kw)
    return RunRecord(algorithm=algorithm, nbytes=nbytes, time=time, **defaults)


class TestRunRecord:
    def test_bandwidth(self):
        rec = record(time=0.5, nbytes=1 << 20)
        assert rec.bandwidth == pytest.approx((1 << 20) / 0.5)
        assert rec.bandwidth_mib == pytest.approx(2.0)

    def test_throughput(self):
        rec = record(time=0.25)
        assert rec.throughput == pytest.approx(4.0)

    def test_zero_time_degenerates_to_inf(self):
        rec = record(time=0.0)
        assert rec.bandwidth == float("inf")
        assert rec.throughput == float("inf")

    def test_describe(self):
        text = record().describe()
        assert "scatter_ring_opt" in text
        assert "P=16" in text and "1MiB" in text and "MB/s" in text

    def test_frozen(self):
        with pytest.raises(Exception):
            record().time = 1.0

    def test_mib_constant_is_base2(self):
        assert MIB_S == 1024.0**2


class TestComparisonRecord:
    def _cmp(self, t_native=2.0, t_opt=1.0):
        native = record(algorithm="scatter_ring_native", time=t_native, messages=63)
        opt = record(algorithm="scatter_ring_opt", time=t_opt, messages=51)
        return ComparisonRecord(nranks=16, nbytes=1 << 20, native=native, opt=opt)

    def test_speedup(self):
        assert self._cmp().speedup == pytest.approx(2.0)

    def test_bandwidth_improvement(self):
        assert self._cmp().bandwidth_improvement_pct == pytest.approx(100.0)

    def test_consistency_speedup_vs_improvement(self):
        cmp = self._cmp(t_native=1.3, t_opt=1.1)
        assert cmp.bandwidth_improvement_pct == pytest.approx(
            (cmp.speedup - 1) * 100
        )

    def test_saved_counters(self):
        cmp = self._cmp()
        assert cmp.transfers_saved == 12
        assert cmp.bytes_saved == 0

    def test_describe(self):
        text = self._cmp().describe()
        assert "12 transfers saved" in text
        assert "+100.0%" in text
