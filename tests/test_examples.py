"""Smoke tests: every example script must run green and say something.

These execute the real scripts in subprocesses — the same entry points a
new user would try first — so the examples can never silently rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(path, timeout=300):
    return subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path):
    proc = run_example(path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout.strip()) > 100  # says something substantive


def test_quickstart_reports_the_headline():
    proc = run_example(next(p for p in EXAMPLES if p.name == "quickstart.py"))
    assert "transfers" in proc.stdout
    assert "bandwidth" in proc.stdout.lower()


def test_traffic_analysis_prints_paper_numbers():
    proc = run_example(
        next(p for p in EXAMPLES if p.name == "traffic_analysis.py")
    )
    # The Section-IV worked examples.
    assert "56" in proc.stdout and "44" in proc.stdout
    assert "90" in proc.stdout and "75" in proc.stdout
