"""Tests for MPI_Scan (linear and recursive doubling)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import scan_linear, scan_recursive_doubling
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job
from repro.util import ceil_log2


def run_scan(algo, P, nbytes=100, timed=False, **kw):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, **kw))

        return program()

    if timed:
        machine = Machine(ideal(nodes=2, cores_per_node=max(P, 2)), nranks=P)
        return Job(machine, factory).run()
    return extract_schedule(P, factory)


class TestInclusivity:
    @pytest.mark.parametrize("algo", [scan_linear, scan_recursive_doubling])
    @pytest.mark.parametrize("P", [1, 2, 3, 7, 8, 16, 17])
    def test_rank_r_folds_r_plus_1_contributions(self, algo, P):
        res = run_scan(algo, P)
        for rank, result in enumerate(res.rank_results):
            assert result.contributions == rank + 1


class TestStructure:
    def test_linear_transfer_count(self):
        res = run_scan(scan_linear, 8)
        assert res.transfers == 7
        # Strictly a chain: rank r sends only to r+1.
        for s in res.sends:
            assert s.dst == s.src + 1

    def test_rd_transfer_count(self):
        # Every rank r sends once per round while r + 2^k < P.
        P = 8
        res = run_scan(scan_recursive_doubling, P)
        expected = sum(
            sum(1 for k in range(ceil_log2(P)) if r + (1 << k) < P) for r in range(P)
        )
        assert res.transfers == expected

    def test_rd_fewer_sequential_steps(self):
        """Recursive doubling finishes in O(log P) simulated time vs the
        chain's O(P)."""
        t_lin = run_scan(scan_linear, 32, nbytes=1000, timed=True).time
        t_rd = run_scan(scan_recursive_doubling, 32, nbytes=1000, timed=True).time
        assert t_rd < t_lin / 2

    def test_combine_cost(self):
        fast = run_scan(scan_linear, 8, nbytes=1 << 20, timed=True).time
        slow = run_scan(
            scan_linear, 8, nbytes=1 << 20, timed=True, reduce_bw=1 << 26
        ).time
        assert slow > fast

    def test_validation(self):
        with pytest.raises(CollectiveError):
            run_scan(scan_linear, 4, nbytes=-1)
        with pytest.raises(CollectiveError):
            run_scan(scan_recursive_doubling, 4, reduce_bw=-1.0)


@settings(deadline=None, max_examples=20)
@given(P=st.integers(min_value=1, max_value=40))
def test_property_both_scans_inclusive(P):
    for algo in (scan_linear, scan_recursive_doubling):
        res = run_scan(algo, P, nbytes=16)
        for rank, result in enumerate(res.rank_results):
            assert result.contributions == rank + 1
