"""Integration tests: broadcast algorithms on the timed DES runtime."""

import pytest

from repro.collectives import (
    ALGORITHMS,
    bcast_binomial,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
    bcast_scatter_rdbl,
    get_algorithm,
)
from repro.errors import CollectiveError
from repro.machine import Machine, hornet, ideal
from repro.mpi import Job, RealBuffer


def run_des(algo, P, nbytes, root=0, spec=None, real=True, working_set=0):
    machine = Machine(spec if spec is not None else ideal(), nranks=P)
    bufs = (
        [RealBuffer(nbytes, fill=(11 if r == root else 0)) for r in range(P)]
        if real
        else None
    )

    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, root))

        return program()

    res = Job(machine, factory, buffers=bufs, working_set=working_set).run()
    return res, bufs


class TestAllAlgorithmsOnDes:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_data_complete(self, name):
        algo = get_algorithm(name)
        P = 8  # pof2 so rdbl is applicable
        res, bufs = run_des(algo, P, 797, root=3)
        for rank, buf in enumerate(bufs):
            assert (buf.array == 11).all(), f"{name}: rank {rank} incomplete"
        assert res.time > 0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_deterministic_time(self, name):
        algo = get_algorithm(name)
        t1, _ = run_des(algo, 8, 4096)
        t2, _ = run_des(algo, 8, 4096)
        assert t1.time == t2.time

    def test_unknown_algorithm(self):
        with pytest.raises(CollectiveError):
            get_algorithm("quantum_bcast")


class TestTimedBehaviour:
    def test_opt_never_slower_than_native_lmsg(self):
        """The headline claim, in simulation: for long messages the tuned
        ring is at least as fast as the native one."""
        for P in (8, 16):
            for nbytes in (2**19, 2**20):
                tn, _ = run_des(
                    bcast_scatter_ring_native,
                    P,
                    nbytes,
                    spec=hornet(nodes=4),
                    real=False,
                    working_set=nbytes,
                )
                to, _ = run_des(
                    bcast_scatter_ring_opt,
                    P,
                    nbytes,
                    spec=hornet(nodes=4),
                    real=False,
                    working_set=nbytes,
                )
                assert to.time <= tn.time * (1 + 1e-9), (P, nbytes)

    def test_opt_strictly_faster_under_contention(self):
        nbytes = 2**20
        tn, _ = run_des(
            bcast_scatter_ring_native, 16, nbytes, spec=hornet(nodes=2), real=False
        )
        to, _ = run_des(
            bcast_scatter_ring_opt, 16, nbytes, spec=hornet(nodes=2), real=False
        )
        assert to.time < tn.time

    def test_opt_moves_fewer_messages_and_bytes(self):
        rn, _ = run_des(bcast_scatter_ring_native, 10, 10_000, real=False)
        ro, _ = run_des(bcast_scatter_ring_opt, 10, 10_000, real=False)
        assert ro.counters.messages < rn.counters.messages
        assert ro.counters.bytes < rn.counters.bytes
        # Exactly the paper's counts: (9 scatter + 90) vs (9 scatter + 75).
        assert rn.counters.messages == 99
        assert ro.counters.messages == 84

    def test_binomial_beats_ring_for_small_messages(self):
        """Sanity of the MPICH selection policy inside our model."""
        spec = hornet(nodes=2)
        tb, _ = run_des(bcast_binomial, 16, 1024, spec=spec, real=False)
        tr, _ = run_des(
            bcast_scatter_ring_native, 16, 1024, spec=spec, real=False
        )
        assert tb.time < tr.time

    def test_ring_beats_binomial_for_long_messages(self):
        spec = hornet(nodes=2)
        nbytes = 2**21
        tb, _ = run_des(bcast_binomial, 16, nbytes, spec=spec, real=False)
        tr, _ = run_des(
            bcast_scatter_ring_opt, 16, nbytes, spec=spec, real=False
        )
        assert tr.time < tb.time

    def test_phantom_and_real_buffers_time_identically(self):
        t_real, _ = run_des(bcast_scatter_ring_opt, 8, 4096, real=True)
        t_phantom, _ = run_des(bcast_scatter_ring_opt, 8, 4096, real=False)
        assert t_real.time == t_phantom.time


class TestSingleRankAndEdges:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_single_rank_is_noop(self, name):
        res, bufs = run_des(get_algorithm(name), 1, 128)
        assert res.counters.messages == 0
        assert (bufs[0].array == 11).all()

    def test_two_ranks(self):
        res, bufs = run_des(bcast_scatter_ring_opt, 2, 100)
        assert (bufs[1].array == 11).all()
        # Scatter send + one ring transfer.
        assert res.counters.messages == 2

    def test_result_records_match_counters(self):
        res, _ = run_des(bcast_scatter_ring_opt, 8, 800)
        total_sends = sum(r.sends for r in res.rank_results)
        assert total_sends == res.counters.messages
