"""The executor matrix: every collective runs on every executor.

One parametrised sweep that guards the library's core promise — any
algorithm generator works unchanged on the timed DES, the zero-time
schedule executor and the real-thread backend.
"""

import pytest

from repro.backends import run_threaded
from repro.collectives import (
    ALGORITHMS,
    ALLGATHER_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    allgatherv_ring,
    allreduce_rabenseifner,
    allreduce_reduce_bcast,
    barrier,
    gather,
    get_algorithm,
    reduce,
    reduce_scatter_halving,
    reduce_scatter_ring,
    scan_linear,
    scan_recursive_doubling,
)
from repro.collectives.schedule import extract_schedule
from repro.machine import Machine, ideal
from repro.mpi import Job

P = 8


def _collectives():
    gens = {}
    for name in sorted(ALGORITHMS):
        gens[f"bcast-{name}"] = lambda ctx, a=get_algorithm(name): a(ctx, 800, 0)
    for name in sorted(ALLGATHER_ALGORITHMS):
        a = ALLGATHER_ALGORITHMS[name]
        gens[f"allgather-{name}"] = lambda ctx, a=a: a(ctx, 100)
    for name in sorted(ALLTOALL_ALGORITHMS):
        a = ALLTOALL_ALGORITHMS[name]
        gens[f"alltoall-{name}"] = lambda ctx, a=a: a(ctx, 100)
    gens["barrier"] = lambda ctx: barrier(ctx)
    gens["gather"] = lambda ctx: gather(ctx, 100, 0)
    gens["reduce"] = lambda ctx: reduce(ctx, 800, 0)
    gens["scan-linear"] = lambda ctx: scan_linear(ctx, 800)
    gens["scan-rd"] = lambda ctx: scan_recursive_doubling(ctx, 800)
    gens["allgatherv-ring"] = lambda ctx: allgatherv_ring(ctx, [100] * P)
    gens["allreduce-reduce-bcast"] = lambda ctx: allreduce_reduce_bcast(ctx, 800)
    gens["allreduce-rabenseifner"] = lambda ctx: allreduce_rabenseifner(ctx, 800)
    gens["reduce-scatter-halving"] = lambda ctx: reduce_scatter_halving(ctx, 800)
    gens["reduce-scatter-ring"] = lambda ctx: reduce_scatter_ring(ctx, 800)
    return gens


COLLECTIVES = _collectives()


def _factory(gen):
    def factory(ctx):
        def program():
            return (yield from gen(ctx))

        return program()

    return factory


@pytest.mark.parametrize("label", sorted(COLLECTIVES), ids=str)
def test_runs_on_schedule_executor(label):
    res = extract_schedule(P, _factory(COLLECTIVES[label]))
    assert all(p is not None or True for p in res.rank_results)


@pytest.mark.parametrize("label", sorted(COLLECTIVES), ids=str)
def test_runs_on_timed_des(label):
    res = Job(Machine(ideal(), nranks=P), _factory(COLLECTIVES[label])).run()
    assert res.time >= 0.0


@pytest.mark.parametrize("label", sorted(COLLECTIVES), ids=str)
def test_runs_on_threads(label):
    results = run_threaded(P, _factory(COLLECTIVES[label]), timeout=30.0)
    assert len(results) == P


def test_transfer_counts_agree_between_executors():
    """Schedule executor and DES count identical transfers for every
    collective (the thread backend counts via its own tally)."""
    from repro.backends import ThreadBackend

    for label, gen in COLLECTIVES.items():
        sched = extract_schedule(P, _factory(gen))
        des = Job(Machine(ideal(), nranks=P), _factory(gen)).run()
        backend = ThreadBackend(P, _factory(gen), timeout=30.0)
        backend.run()
        assert sched.transfers == des.counters.messages == backend.message_count, label
