"""Tests for the binomial scatter phase (Figures 1 and 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CollectiveError
from repro.collectives import binomial_scatter, span_bytes, span_disp, subtree_chunks
from repro.collectives.schedule import extract_schedule
from repro.mpi import RealBuffer
from repro.util import ChunkSet, chunk_count, chunk_disp


def run_scatter(P, nbytes, root=0, real=True):
    bufs = None
    if real:
        bufs = [
            RealBuffer(nbytes, fill=(7 if r == root else 0)) for r in range(P)
        ]

    def factory(ctx):
        def program():
            return (yield from binomial_scatter(ctx, nbytes, root))

        return program()

    schedule = extract_schedule(P, factory, buffers=bufs)
    return schedule, bufs


class TestSpanHelpers:
    def test_span_bytes_whole_buffer(self):
        assert span_bytes(100, 8, 0, 8) == 100

    def test_span_bytes_clamps_tail(self):
        # 9 bytes over 8 chunks: ssize=2; chunks 5..7 are empty.
        assert span_bytes(9, 8, 4, 4) == 1
        assert span_bytes(9, 8, 6, 2) == 0

    def test_span_disp_clamps(self):
        assert span_disp(9, 8, 7) == 9

    def test_span_validation(self):
        with pytest.raises(CollectiveError):
            span_bytes(100, 8, 7, 2)
        with pytest.raises(CollectiveError):
            span_bytes(100, 8, 0, -1)

    def test_spans_are_additive(self):
        for first in range(8):
            for n in range(8 - first):
                assert span_bytes(100, 8, first, n) + span_bytes(
                    100, 8, first + n, 1
                ) == span_bytes(100, 8, first, n + 1)


class TestPaperFigures:
    def test_figure1_p8_transfer_pattern(self):
        """Root 0 sends {4,5,6,7} to rank 4 first; the full tree issues
        P-1 = 7 transfers."""
        schedule, _ = run_scatter(8, 800)
        assert schedule.transfers == 7
        first = schedule.sends[0]
        assert (first.src, first.dst) == (0, 4)
        assert first.chunks == (4, 5, 6, 7)
        assert first.nbytes == 400

    def test_figure2_p10_extra_branch(self):
        """P=10 adds the branch rooted at relative rank 8."""
        schedule, _ = run_scatter(10, 1000)
        assert schedule.transfers == 9
        pairs = {(s.src, s.dst): s.chunks for s in schedule.sends}
        assert pairs[(0, 8)] == (8, 9)

    def test_ownership_matches_subtree(self):
        schedule, _ = run_scatter(8, 800)
        for rel, res in enumerate(schedule.rank_results):
            assert res.first_chunk == rel
            assert res.n_chunks == subtree_chunks(rel, 8)
            assert res.owned == ChunkSet.interval(8, rel, res.n_chunks)

    def test_bytes_land_at_final_displacement(self):
        _, bufs = run_scatter(8, 800)
        for rel, buf in enumerate(bufs):
            ext = subtree_chunks(rel, 8)
            lo, hi = rel * 100, (rel + ext) * 100
            assert (buf.array[lo:hi] == 7).all()
            # Nothing outside the owned span (except on the root).
            if rel != 0:
                assert not buf.array[:lo].any()
                assert not buf.array[hi:].any()


class TestRootsAndEdges:
    @pytest.mark.parametrize("root", [0, 1, 5, 7])
    def test_nonzero_roots(self, root):
        schedule, bufs = run_scatter(8, 800, root=root)
        assert schedule.transfers == 7
        # Relative rank r = (rank - root) mod 8 owns its interval.
        for rank, buf in enumerate(bufs):
            rel = (rank - root) % 8
            ext = subtree_chunks(rel, 8)
            assert (buf.array[rel * 100 : (rel + ext) * 100] == 7).all()

    def test_single_rank(self):
        schedule, bufs = run_scatter(1, 64)
        assert schedule.transfers == 0
        assert schedule.rank_results[0].owned.is_full

    def test_zero_bytes(self):
        schedule, _ = run_scatter(4, 0)
        assert schedule.transfers == 0  # zero-byte sends are skipped

    def test_tiny_buffer_skips_empty_subtrees(self):
        # 3 bytes over 8 ranks: ssize=1, chunks 3..7 empty -> subtrees
        # holding no bytes receive nothing.
        schedule, bufs = run_scatter(8, 3)
        dsts = {s.dst for s in schedule.sends}
        assert dsts == {1, 2}
        assert all(s.nbytes > 0 for s in schedule.sends)

    def test_negative_nbytes_rejected(self):
        with pytest.raises(CollectiveError):
            run_scatter(4, -1, real=False)


@settings(deadline=None, max_examples=40)
@given(
    P=st.integers(min_value=1, max_value=40),
    data=st.data(),
)
def test_property_scatter_correctness(P, data):
    """For random P, root and size: every rank ends with exactly its
    subtree interval, filled with the root's data, and total transferred
    bytes equal the non-root-owned portion weighted by tree depth."""
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    nbytes = data.draw(st.integers(min_value=0, max_value=4000))
    schedule, bufs = run_scatter(P, nbytes, root=root)
    for rank, buf in enumerate(bufs):
        rel = (rank - root) % P
        res = schedule.rank_results[rank]
        assert res.first_chunk == rel
        assert res.n_chunks == subtree_chunks(rel, P)
        lo = span_disp(nbytes, P, rel)
        hi = lo + span_bytes(nbytes, P, rel, res.n_chunks)
        assert (buf.array[lo:hi] == 7).all()
        assert res.nbytes_owned == hi - lo
    # The root never receives; every other rank receives at most once.
    for s in schedule.sends:
        assert s.dst != root
    recv_counts = {}
    for s in schedule.sends:
        recv_counts[s.dst] = recv_counts.get(s.dst, 0) + 1
    assert all(v == 1 for v in recv_counts.values())
