"""Tests for the All-to-One collectives (gather, reduce)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import gather, reduce
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer


def run_gather(P, block_bytes, root=0):
    """Rank rel r contributes block r filled with r+1 (relative layout)."""
    bufs = []
    for rank in range(P):
        rel = (rank - root) % P
        buf = RealBuffer(P * block_bytes)
        buf.array[rel * block_bytes : (rel + 1) * block_bytes] = rel + 1
        bufs.append(buf)

    def factory(ctx):
        def program():
            return (yield from gather(ctx, block_bytes, root))

        return program()

    return extract_schedule(P, factory, buffers=bufs), bufs


def run_reduce(P, nbytes, root=0, reduce_bw=0.0, timed=False):
    def factory(ctx):
        def program():
            return (yield from reduce(ctx, nbytes, root, reduce_bw=reduce_bw))

        return program()

    if timed:
        machine = Machine(ideal(nodes=2, cores_per_node=16), nranks=P)
        return Job(machine, factory).run()
    return extract_schedule(P, factory)


class TestGather:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_root_collects_every_block(self, P):
        schedule, bufs = run_gather(P, 16)
        root_buf = bufs[0]
        for rel in range(P):
            blk = root_buf.array[rel * 16 : (rel + 1) * 16]
            assert (blk == rel + 1).all(), f"block {rel}"
        assert schedule.rank_results[0].gathered.is_full

    def test_transfer_count_is_p_minus_1(self):
        schedule, _ = run_gather(8, 16)
        assert schedule.transfers == 7

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_nonzero_root(self, root):
        schedule, bufs = run_gather(8, 16, root=root)
        assert schedule.rank_results[root].gathered.is_full

    def test_leaves_send_once_inner_nodes_aggregate(self):
        schedule, _ = run_gather(8, 16)
        # Rank 4's message to the root carries its 4-block subtree.
        to_root = [s for s in schedule.sends if s.dst == 0 and s.src == 4]
        assert len(to_root) == 1
        assert to_root[0].chunks == (4, 5, 6, 7)

    def test_mirror_of_scatter(self):
        """Gather's transfer multiset is the scatter's with src/dst
        swapped."""
        from repro.collectives import binomial_scatter

        P, nbytes = 10, 160

        def scatter_factory(ctx):
            def program():
                return (yield from binomial_scatter(ctx, nbytes, 0))

            return program()

        sc = extract_schedule(P, scatter_factory)
        ga, _ = run_gather(P, 16)
        assert sorted((s.dst, s.src, s.nbytes) for s in sc.sends) == sorted(
            (s.src, s.dst, s.nbytes) for s in ga.sends
        )

    def test_zero_block(self):
        schedule, _ = run_gather(8, 0)
        assert schedule.transfers == 0

    def test_negative_rejected(self):
        def factory(ctx):
            def program():
                return (yield from gather(ctx, -1))

            return program()

        with pytest.raises(CollectiveError):
            extract_schedule(4, factory)


class TestReduce:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_root_combines_all_contributions(self, P):
        schedule = run_reduce(P, 1000)
        assert schedule.rank_results[0].contributions == P

    def test_every_hop_carries_full_vector(self):
        schedule = run_reduce(8, 1000)
        assert all(s.nbytes == 1000 for s in schedule.sends)
        assert schedule.transfers == 7

    @pytest.mark.parametrize("root", [0, 5])
    def test_nonzero_root(self, root):
        schedule = run_reduce(10, 500, root=root)
        assert schedule.rank_results[root].contributions == 10

    def test_combine_cost_extends_makespan(self):
        fast = run_reduce(8, 1 << 20, reduce_bw=0.0, timed=True)
        slow = run_reduce(8, 1 << 20, reduce_bw=1 << 28, timed=True)
        assert slow.time > fast.time

    def test_bad_args(self):
        def factory(neg_bw):
            def f(ctx):
                def program():
                    return (yield from reduce(ctx, 100, 0, reduce_bw=neg_bw))

                return program()

            return f

        with pytest.raises(CollectiveError):
            extract_schedule(4, factory(-1.0))


@settings(deadline=None, max_examples=20)
@given(
    P=st.integers(min_value=1, max_value=24),
    data=st.data(),
)
def test_property_gather_from_any_root(P, data):
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    block = data.draw(st.integers(min_value=1, max_value=64))
    schedule, bufs = run_gather(P, block, root=root)
    root_buf = bufs[root]
    for rel in range(P):
        blk = root_buf.array[rel * block : (rel + 1) * block]
        assert (blk == rel + 1).all()
    # Non-root ranks send exactly once; the root never sends.
    for s in schedule.sends:
        assert s.src != root
