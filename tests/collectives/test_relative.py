"""Tests for relative-rank math, subtree extents and the tuned-ring role
rule — the number theory the whole paper rests on."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CollectiveError
from repro.collectives import (
    absolute_rank,
    relative_rank,
    subtree_chunks,
    tuned_ring_role,
)

sizes = st.integers(min_value=1, max_value=300)


class TestRelativeRank:
    def test_root_maps_to_zero(self):
        assert relative_rank(3, root=3, size=8) == 0

    def test_wraps(self):
        assert relative_rank(1, root=6, size=8) == 3

    @given(size=sizes, data=st.data())
    def test_roundtrip(self, size, data):
        root = data.draw(st.integers(min_value=0, max_value=size - 1))
        rank = data.draw(st.integers(min_value=0, max_value=size - 1))
        rel = relative_rank(rank, root, size)
        assert absolute_rank(rel, root, size) == rank

    def test_validation(self):
        with pytest.raises(CollectiveError):
            relative_rank(0, root=5, size=4)
        with pytest.raises(CollectiveError):
            relative_rank(9, root=0, size=4)
        with pytest.raises(CollectiveError):
            absolute_rank(4, root=0, size=4)


class TestSubtreeChunks:
    def test_paper_p8(self):
        # Figure 1: root owns 8; rank 4 gets {4,5,6,7}; 2 and 6 get 2; odd
        # ranks are leaves.
        assert [subtree_chunks(r, 8) for r in range(8)] == [8, 1, 2, 1, 4, 1, 2, 1]

    def test_paper_p10(self):
        # Figure 2: the extra branch rooted at relative rank 8 owns {8,9}.
        assert [subtree_chunks(r, 10) for r in range(10)] == [
            10, 1, 2, 1, 4, 1, 2, 1, 2, 1,
        ]

    @given(size=sizes)
    def test_extents_partition_the_chunks(self, size):
        """Subtree intervals [r, r+extent) tile [0, size) exactly: summing
        over subtree *roots* covers every chunk once."""
        covered = [0] * size
        # Walk the tree: root covers all; every rank's own chunk is the
        # start of its interval.
        for r in range(size):
            ext = subtree_chunks(r, size)
            assert 1 <= ext <= size - r  # never wraps
            if r > 0:
                assert ext <= (r & -r)
        # Leaves own exactly one chunk; total of (extent-1) over all ranks
        # counts each chunk's "descendant transfers" in the scatter.
        total = sum(subtree_chunks(r, size) for r in range(size))
        # Every rank appears once as its own chunk plus once per ancestor:
        # sum of subtree sizes == sum over chunks of (tree depth of chunk + 1).
        assert total >= size
        assert total <= size * (size.bit_length() + 1)

    @given(size=sizes)
    def test_validation(self, size):
        with pytest.raises(CollectiveError):
            subtree_chunks(size, size)
        with pytest.raises(CollectiveError):
            subtree_chunks(-1, size)


class TestTunedRingRole:
    def test_paper_p8_roles(self):
        # Section IV walk-through for Figure 4.
        roles = {r: tuned_ring_role(r, 8) for r in range(8)}
        assert roles[0] == (8, 0)  # root: send-only from step 1
        assert roles[7] == (8, 1)  # root's left neighbour: recv-only
        assert roles[4] == (4, 0)  # owns {4,5,6,7}: stops receiving early
        assert roles[3] == (4, 1)  # feeds rank 4 for exactly 4 steps
        assert roles[2] == (2, 0)
        assert roles[1] == (2, 1)
        assert roles[6] == (2, 0)
        assert roles[5] == (2, 1)

    def test_paper_p10_roles(self):
        # Figure 5: rank 4 stops receiving after step 6 (step=4);
        # rank 8 owns {8,9} (step=2); rank 9 feeds root... never sends.
        roles = {r: tuned_ring_role(r, 10) for r in range(10)}
        assert roles[0] == (10, 0)
        assert roles[9] == (10, 1)
        assert roles[4] == (4, 0)
        assert roles[3] == (4, 1)
        assert roles[8] == (2, 0)
        assert roles[7] == (2, 1)

    def test_saved_transfers_paper_numbers(self):
        """Savings = sum over flag=1 ranks of (step - 1): 12 at P=8, 15 at
        P=10 (Section IV)."""
        def saved(P):
            return sum(
                step - 1
                for r in range(P)
                for step, flag in [tuned_ring_role(r, P)]
                if flag == 1
            )

        assert saved(8) == 12
        assert saved(10) == 15

    @given(size=st.integers(min_value=2, max_value=300))
    def test_pairing_property(self, size):
        """Every *effective* early send-stop (step >= 2) at rank r is
        matched by an equal receive-stop at rank r+1, so no sendrecv is
        ever left unpaired. (step == 1 skips nothing on either side.)"""
        for r in range(size):
            step, flag = tuned_ring_role(r, size)
            if flag == 1 and step >= 2:
                nstep, nflag = tuned_ring_role((r + 1) % size, size)
                assert nflag == 0 and nstep == step

    @given(size=st.integers(min_value=2, max_value=300))
    def test_flag0_step_equals_scatter_ownership(self, size):
        """A send-only rank stops receiving exactly when its scatter
        ownership already covers the remaining deliveries."""
        for r in range(size):
            step, flag = tuned_ring_role(r, size)
            if flag == 0:
                assert step == subtree_chunks(r, size)

    @given(size=st.integers(min_value=2, max_value=300))
    def test_flag1_ranks_are_leaves(self, size):
        for r in range(size):
            step, flag = tuned_ring_role(r, size)
            if flag == 1:
                assert subtree_chunks(r, size) == 1

    @given(size=st.integers(min_value=2, max_value=300))
    def test_savings_closed_form(self, size):
        """Total saved transfers == S - P where S = sum of subtree sizes."""
        saved = sum(
            step - 1
            for r in range(size)
            for step, flag in [tuned_ring_role(r, size)]
            if flag == 1
        )
        S = sum(subtree_chunks(r, size) for r in range(size))
        assert saved == S - size

    def test_size_one(self):
        assert tuned_ring_role(0, 1) == (1, 0)

    def test_validation(self):
        with pytest.raises(CollectiveError):
            tuned_ring_role(5, 5)
