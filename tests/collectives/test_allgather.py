"""Tests for the standalone allgather collective (ring / rdbl / Bruck)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    ALLGATHER_ALGORITHMS,
    allgather_bruck,
    allgather_rdbl,
    allgather_ring,
)
from repro.collectives.allgather import _spans
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer


def run_allgather(algo, P, block_bytes, timed=False):
    """Each rank contributes block r filled with value r+1."""
    bufs = []
    for r in range(P):
        buf = RealBuffer(P * block_bytes)
        buf.array[r * block_bytes : (r + 1) * block_bytes] = r + 1
        bufs.append(buf)

    def factory(ctx):
        def program():
            return (yield from algo(ctx, block_bytes))

        return program()

    if timed:
        machine = Machine(ideal(nodes=4, cores_per_node=16), nranks=P)
        res = Job(machine, factory, buffers=bufs).run()
    else:
        res = extract_schedule(P, factory, buffers=bufs)
    return res, bufs


def check_gathered(bufs, P, block_bytes):
    for rank, buf in enumerate(bufs):
        for b in range(P):
            blk = buf.array[b * block_bytes : (b + 1) * block_bytes]
            assert (blk == b + 1).all(), f"rank {rank} block {b}"


class TestSpans:
    def test_no_wrap(self):
        assert _spans(2, 3, 8) == [(2, 3)]

    def test_wrap(self):
        assert _spans(6, 4, 8) == [(6, 2), (0, 2)]

    def test_exact_boundary(self):
        assert _spans(5, 3, 8) == [(5, 3)]

    def test_modular_start(self):
        assert _spans(9, 2, 8) == [(1, 2)]


class TestRing:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_correct(self, P):
        res, bufs = run_allgather(allgather_ring, P, 16)
        check_gathered(bufs, P, 16)
        for r in res.rank_results:
            r.assert_complete()
            assert r.steps == P - 1

    def test_transfer_count(self):
        res, _ = run_allgather(allgather_ring, 8, 16)
        assert res.transfers == 8 * 7


class TestRdbl:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 16])
    def test_correct(self, P):
        res, bufs = run_allgather(allgather_rdbl, P, 16)
        check_gathered(bufs, P, 16)

    def test_rejects_npof2(self):
        with pytest.raises(CollectiveError):
            run_allgather(allgather_rdbl, 6, 16)

    def test_log_steps(self):
        res, _ = run_allgather(allgather_rdbl, 16, 8)
        assert all(r.steps == 4 for r in res.rank_results)
        assert res.transfers == 16 * 4


class TestBruck:
    @pytest.mark.parametrize("P", [1, 2, 3, 5, 8, 10, 13, 16, 17])
    def test_correct_any_p(self, P):
        res, bufs = run_allgather(allgather_bruck, P, 16)
        check_gathered(bufs, P, 16)
        for r in res.rank_results:
            r.assert_complete()

    def test_ceil_log_steps(self):
        for P, expected in ((8, 3), (10, 4), (17, 5)):
            res, _ = run_allgather(allgather_bruck, P, 8)
            assert all(r.steps == expected for r in res.rank_results)

    def test_fewer_steps_than_ring_for_large_p(self):
        res_b, _ = run_allgather(allgather_bruck, 33, 8)
        res_r, _ = run_allgather(allgather_ring, 33, 8)
        assert res_b.rank_results[0].steps < res_r.rank_results[0].steps

    def test_never_redelivers(self):
        # add_strict inside the algorithm raises on redelivery; a clean
        # run is the assertion.
        run_allgather(allgather_bruck, 11, 4)


class TestOnDes:
    @pytest.mark.parametrize("name", sorted(ALLGATHER_ALGORITHMS))
    def test_timed_runs(self, name):
        P = 8
        algo = ALLGATHER_ALGORITHMS[name]
        res, bufs = run_allgather(algo, P, 256, timed=True)
        check_gathered(bufs, P, 256)
        assert res.time > 0

    def test_bruck_beats_ring_latency_for_small_blocks(self):
        """Fewer steps -> lower latency for tiny blocks."""
        _, _ = run_allgather(allgather_bruck, 16, 1, timed=True)
        res_b, _ = run_allgather(allgather_bruck, 16, 1, timed=True)
        res_r, _ = run_allgather(allgather_ring, 16, 1, timed=True)
        assert res_b.time < res_r.time

    def test_zero_block(self):
        res, _ = run_allgather(allgather_ring, 4, 0)
        for r in res.rank_results:
            r.assert_complete()

    def test_negative_block_rejected(self):
        def factory(ctx):
            def program():
                return (yield from allgather_ring(ctx, -1))

            return program()

        with pytest.raises(CollectiveError):
            extract_schedule(4, factory)


@settings(deadline=None, max_examples=20)
@given(
    P=st.integers(min_value=1, max_value=20),
    block=st.integers(min_value=0, max_value=64),
)
def test_property_all_algorithms_agree(P, block):
    for name, algo in ALLGATHER_ALGORITHMS.items():
        if name == "rdbl" and P & (P - 1):
            continue
        _, bufs = run_allgather(algo, P, block)
        if block:
            check_gathered(bufs, P, block)
