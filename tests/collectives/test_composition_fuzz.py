"""Composition fuzz: random chains of collectives in one program.

Real applications issue sequences of collectives back to back (the
SUMMA example does bcast-bcast-compute in a loop). This fuzz draws a
random chain — mixed roots, sizes and operations — and runs it through
the zero-time executor and the timed DES, checking both complete
without deadlock and agree on the transfer count. Distinct per-phase
tags plus communicator translation must keep adjacent collectives from
cross-matching, whatever the order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    allgatherv_ring,
    allreduce_reduce_bcast,
    barrier,
    bcast_binomial,
    bcast_chain,
    bcast_knomial,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
    gather,
    reduce,
    reduce_scatter_ring,
    scan_recursive_doubling,
)
from repro.collectives.schedule import extract_schedule
from repro.machine import Machine, ideal
from repro.mpi import Job


def _ops(P):
    """(name, generator-factory(draw)) pairs usable at any P."""
    return [
        ("barrier", lambda d: lambda ctx: barrier(ctx)),
        (
            "bcast_binomial",
            lambda d: lambda ctx, n=d("n"), r=d("root"): bcast_binomial(ctx, n, r),
        ),
        (
            "bcast_ring_native",
            lambda d: lambda ctx, n=d("n"), r=d("root"): bcast_scatter_ring_native(
                ctx, n, r
            ),
        ),
        (
            "bcast_ring_opt",
            lambda d: lambda ctx, n=d("n"), r=d("root"): bcast_scatter_ring_opt(
                ctx, n, r
            ),
        ),
        (
            "bcast_knomial3",
            lambda d: lambda ctx, n=d("n"), r=d("root"): bcast_knomial(
                ctx, n, r, radix=3
            ),
        ),
        (
            "bcast_chain",
            lambda d: lambda ctx, n=d("n"), r=d("root"): bcast_chain(
                ctx, n, r, segment_bytes=257
            ),
        ),
        ("gather", lambda d: lambda ctx, n=d("n"), r=d("root"): gather(ctx, n // 4 + 1, r)),
        ("reduce", lambda d: lambda ctx, n=d("n"), r=d("root"): reduce(ctx, n, r)),
        (
            "reduce_scatter_ring",
            lambda d: lambda ctx, n=d("n"): reduce_scatter_ring(ctx, n),
        ),
        (
            "allgatherv",
            lambda d: lambda ctx, n=d("n"): allgatherv_ring(
                ctx, [(n + i) % 97 for i in range(ctx.size)]
            ),
        ),
        (
            "allreduce",
            lambda d: lambda ctx, n=d("n"): allreduce_reduce_bcast(ctx, n),
        ),
        ("scan_rd", lambda d: lambda ctx, n=d("n"): scan_recursive_doubling(ctx, n)),
    ]


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_random_collective_chains(data):
    P = data.draw(st.integers(min_value=2, max_value=9), label="P")
    chain_len = data.draw(st.integers(min_value=1, max_value=5), label="len")
    ops = _ops(P)
    chain = []
    for _ in range(chain_len):
        name, make = data.draw(st.sampled_from(ops))

        def draw_param(kind, P=P):
            if kind == "n":
                return data.draw(st.integers(min_value=0, max_value=2000))
            return data.draw(st.integers(min_value=0, max_value=P - 1))

        chain.append((name, make(draw_param)))

    def factory(ctx):
        def program():
            for _name, gen in chain:
                yield from gen(ctx)
            return "done"

        return program()

    sched = extract_schedule(P, factory)
    assert sched.rank_results == ["done"] * P

    des = Job(Machine(ideal(), nranks=P), factory).run()
    assert des.rank_results == ["done"] * P
    assert des.counters.messages == sched.transfers, [n for n, _ in chain]
