"""Tests for the MPICH3 algorithm selector and size classes."""

import pytest

from repro.errors import CollectiveError
from repro.collectives import (
    LONG_MSG_SIZE,
    MIN_PROCS,
    SHORT_MSG_SIZE,
    choose_bcast,
    choose_bcast_name,
    classify_message,
    is_ring_regime,
    bcast_scatter_ring_opt,
)


class TestThresholds:
    def test_paper_constants(self):
        # Section V: "the message size threshold ... is 12288 bytes and
        # ... 524288 bytes".
        assert SHORT_MSG_SIZE == 12288
        assert LONG_MSG_SIZE == 524288

    def test_classify_boundaries(self):
        assert classify_message(12287) == "short"
        assert classify_message(12288) == "medium"
        assert classify_message(524287) == "medium"
        assert classify_message(524288) == "long"

    def test_classify_rejects_negative(self):
        with pytest.raises(CollectiveError):
            classify_message(-1)


class TestSelection:
    def test_short_uses_binomial(self):
        assert choose_bcast_name(1024, 64) == "binomial"

    def test_small_comm_uses_binomial_even_for_long(self):
        assert choose_bcast_name(10 * 2**20, MIN_PROCS - 1) == "binomial"

    def test_medium_pof2_uses_rdbl(self):
        assert choose_bcast_name(100000, 64) == "scatter_rdbl"

    def test_medium_npof2_uses_ring(self):
        # The paper's mmsg-npof2 case.
        assert choose_bcast_name(100000, 129) == "scatter_ring_native"

    def test_long_always_uses_ring(self):
        # The paper's lmsg case, pof2 or not.
        assert choose_bcast_name(2**20, 64) == "scatter_ring_native"
        assert choose_bcast_name(2**20, 129) == "scatter_ring_native"

    def test_tuned_mode_swaps_ring_only(self):
        assert choose_bcast_name(2**20, 64, tuned=True) == "scatter_ring_opt"
        assert choose_bcast_name(100000, 129, tuned=True) == "scatter_ring_opt"
        assert choose_bcast_name(1024, 64, tuned=True) == "binomial"
        assert choose_bcast_name(100000, 64, tuned=True) == "scatter_rdbl"

    def test_paper_experiment_points_land_in_ring_regime(self):
        # Fig. 6: lmsg with 16/64/256 procs; Fig. 7: 12288..1048576 with
        # npof2 procs; Fig. 8: 12288..2560000 with 129 procs.
        for P in (16, 64, 256):
            assert is_ring_regime(2**20, P)
        for P in (9, 17, 33, 65, 129):
            assert is_ring_regime(12288, P)
            assert is_ring_regime(524287, P)
            assert is_ring_regime(1048576, P)

    def test_critical_size_12288_at_pof2_is_not_ring(self):
        # ... but 12288 bytes with a pof2 count goes recursive-doubling,
        # which is why the paper only evaluates npof2 there.
        assert not is_ring_regime(12288, 16)

    def test_choose_bcast_returns_callable(self):
        algo = choose_bcast(2**20, 64, tuned=True)
        assert algo is bcast_scatter_ring_opt

    def test_bad_size(self):
        with pytest.raises(CollectiveError):
            choose_bcast_name(1024, 0)
