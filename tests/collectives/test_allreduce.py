"""Tests for the allreduce strategies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    allreduce_rabenseifner,
    allreduce_reduce_bcast,
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
)
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, hornet, ideal
from repro.mpi import Job


def run(algo, P, nbytes, timed=False, spec=None, **kw):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, **kw))

        return program()

    if timed:
        machine = Machine(spec or ideal(nodes=4, cores_per_node=16), nranks=P)
        return Job(machine, factory, working_set=nbytes).run()
    return extract_schedule(P, factory)


class TestReduceBcast:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_runs_any_p(self, P):
        res = run(allreduce_reduce_bcast, P, 1000)
        for r in res.rank_results:
            assert r.strategy == "reduce_bcast"

    def test_transfer_count(self):
        # (P-1) reduce + (P-1) scatter + tuned ring.
        res = run(allreduce_reduce_bcast, 8, 800)
        assert res.transfers == 7 + 7 + 44

    def test_pluggable_bcast_inherits_tuned_gain(self):
        """The paper's optimisation composes into allreduce: the tuned
        broadcast phase makes the whole allreduce faster."""
        spec = hornet(nodes=2)
        t_native = run(
            allreduce_reduce_bcast,
            16,
            2**20,
            timed=True,
            spec=spec,
            bcast=bcast_scatter_ring_native,
        ).time
        t_opt = run(
            allreduce_reduce_bcast,
            16,
            2**20,
            timed=True,
            spec=spec,
            bcast=bcast_scatter_ring_opt,
        ).time
        assert t_opt < t_native

    def test_reduce_cost_applies(self):
        fast = run(allreduce_reduce_bcast, 8, 1 << 20, timed=True).time
        slow = run(
            allreduce_reduce_bcast, 8, 1 << 20, timed=True, reduce_bw=1 << 27
        ).time
        assert slow > fast

    def test_negative_size(self):
        with pytest.raises(CollectiveError):
            run(allreduce_reduce_bcast, 4, -1)


class TestRabenseifner:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 16, 32])
    def test_runs_pof2(self, P):
        res = run(allreduce_rabenseifner, P, 64 * max(P, 1))
        for r in res.rank_results:
            assert r.strategy == "rabenseifner"

    def test_rejects_npof2(self):
        with pytest.raises(CollectiveError):
            run(allreduce_rabenseifner, 6, 600)

    def test_transfer_count(self):
        # log2(P) reduce-scatter rounds + (P-1) ring steps, per rank.
        res = run(allreduce_rabenseifner, 8, 800)
        assert res.transfers == 8 * (3 + 7)

    def test_reduce_scatter_halves_payload_each_round(self):
        res = run(allreduce_rabenseifner, 8, 800)
        rs = [s for s in res.sends if s.tag == 13 and s.src == 0]
        assert [s.nbytes for s in rs] == [400, 200, 100]

    def test_beats_reduce_bcast_for_large_vectors(self):
        """The textbook result: Rabenseifner moves ~2n per rank instead
        of the reduce+bcast's ~2n with full-vector tree hops, winning on
        bandwidth-bound inputs."""
        spec = ideal(nodes=4, cores_per_node=16)
        n = 1 << 22
        t_rab = run(allreduce_rabenseifner, 16, n, timed=True, spec=spec).time
        t_rb = run(allreduce_reduce_bcast, 16, n, timed=True, spec=spec).time
        assert t_rab < t_rb

    def test_uneven_size(self):
        res = run(allreduce_rabenseifner, 8, 801)
        assert res.transfers > 0


@settings(deadline=None, max_examples=15)
@given(
    logp=st.integers(min_value=0, max_value=5),
    nbytes=st.integers(min_value=0, max_value=5000),
)
def test_property_rabenseifner_structure(logp, nbytes):
    P = 1 << logp
    res = run(allreduce_rabenseifner, P, nbytes)
    # Every rank performs exactly log2(P) + (P-1) send operations,
    # except that zero-size windows still issue their sendrecv.
    for rank in range(P):
        assert len(res.sends_from(rank)) == (logp + P - 1 if P > 1 else 0)
