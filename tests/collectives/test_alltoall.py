"""Tests for the all-to-all exchange algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    ALLTOALL_ALGORITHMS,
    alltoall_bruck,
    alltoall_pairwise,
)
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job


def run_a2a(algo, P, block, timed=False):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, block))

        return program()

    if timed:
        machine = Machine(ideal(nodes=4, cores_per_node=16), nranks=P)
        return Job(machine, factory).run()
    return extract_schedule(P, factory)


class TestPairwise:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 16])
    def test_pof2_xor_partners(self, P):
        res = run_a2a(alltoall_pairwise, P, 64)
        assert res.transfers == P * (P - 1)
        for s in res.sends:
            assert s.src != s.dst

    @pytest.mark.parametrize("P", [3, 5, 10])
    def test_npof2_shifted_partners(self, P):
        res = run_a2a(alltoall_pairwise, P, 64)
        assert res.transfers == P * (P - 1)

    def test_every_pair_communicates_exactly_once(self):
        P = 8
        res = run_a2a(alltoall_pairwise, P, 64)
        pairs = [(s.src, s.dst) for s in res.sends]
        assert len(set(pairs)) == P * (P - 1)

    def test_total_bytes(self):
        P, block = 8, 100
        res = run_a2a(alltoall_pairwise, P, block)
        assert res.total_bytes == P * (P - 1) * block

    def test_result_record(self):
        res = run_a2a(alltoall_pairwise, 8, 64)
        for r in res.rank_results:
            assert r.rounds == 7
            assert r.bytes_sent == 7 * 64


class TestBruck:
    @pytest.mark.parametrize("P,rounds", [(2, 1), (8, 3), (10, 4), (17, 5)])
    def test_log_rounds(self, P, rounds):
        res = run_a2a(alltoall_bruck, P, 64)
        for r in res.rank_results:
            assert r.rounds == rounds
        assert res.transfers == P * rounds

    def test_bytes_exceed_pairwise(self):
        """Bruck's store-and-forward re-sends blocks: popcount hops."""
        P, block = 16, 100
        bruck = run_a2a(alltoall_bruck, P, block)
        pairwise = run_a2a(alltoall_pairwise, P, block)
        assert bruck.total_bytes > pairwise.total_bytes
        # Exact: sum over distances of popcount(distance) blocks per rank.
        expected = P * block * sum(bin(d).count("1") for d in range(1, P))
        assert bruck.total_bytes == expected

    def test_single_rank(self):
        res = run_a2a(alltoall_bruck, 1, 64)
        assert res.transfers == 0


class TestTradeoffOnDes:
    def test_bruck_wins_latency_for_tiny_blocks(self):
        t_b = run_a2a(alltoall_bruck, 32, 8, timed=True).time
        t_p = run_a2a(alltoall_pairwise, 32, 8, timed=True).time
        assert t_b < t_p

    def test_pairwise_wins_bandwidth_for_big_blocks(self):
        t_b = run_a2a(alltoall_bruck, 16, 1 << 18, timed=True).time
        t_p = run_a2a(alltoall_pairwise, 16, 1 << 18, timed=True).time
        assert t_p < t_b

    def test_negative_block_rejected(self):
        with pytest.raises(CollectiveError):
            run_a2a(alltoall_pairwise, 4, -1)


@settings(deadline=None, max_examples=15)
@given(P=st.integers(min_value=1, max_value=20), block=st.integers(min_value=0, max_value=256))
def test_property_pairwise_complete_exchange(P, block):
    res = run_a2a(alltoall_pairwise, P, block)
    # Every rank sends to and receives from every other rank once.
    for r in range(P):
        assert len(res.sends_from(r)) == P - 1
        assert len(res.sends_to(r)) == P - 1
