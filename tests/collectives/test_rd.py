"""Tests for the recursive-doubling allgather and its bcast composition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CollectiveError
from repro.collectives import (
    allgather_recursive_doubling,
    bcast_scatter_rdbl,
    binomial_scatter,
)
from repro.collectives.schedule import extract_schedule
from repro.mpi import RealBuffer


def run_rdbl(P, nbytes, root=0):
    bufs = [RealBuffer(nbytes, fill=(5 if r == root else 0)) for r in range(P)]

    def factory(ctx):
        def program():
            return (yield from bcast_scatter_rdbl(ctx, nbytes, root))

        return program()

    return extract_schedule(P, factory, buffers=bufs), bufs


class TestRecursiveDoubling:
    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_data_complete_pof2(self, P):
        schedule, bufs = run_rdbl(P, 64 * P)
        for buf in bufs:
            assert (buf.array == 5).all()
        for res in schedule.rank_results:
            res.assert_complete()

    def test_rejects_non_pof2(self):
        def factory(ctx):
            def program():
                return (yield from allgather_recursive_doubling(ctx, 100, 0))

            return program()

        with pytest.raises(CollectiveError):
            extract_schedule(6, factory)

    def test_step_count_is_log2(self):
        schedule, _ = run_rdbl(16, 1600)
        for res in schedule.rank_results:
            # scatter recvs (<=1) + rd sendrecvs (log2 P).
            assert res.sends >= 4
        rd_sends = [s for s in schedule.sends if s.tag == 3]
        # Every rank sends once per round: P * log2(P).
        assert len(rd_sends) == 16 * 4

    def test_transfer_count_smaller_than_ring(self):
        """Recursive doubling needs P*log2(P) transfers vs the ring's
        P*(P-1) — why MPICH prefers it for medium pof2 messages."""
        schedule, _ = run_rdbl(16, 16 * 1024)
        rd = sum(1 for s in schedule.sends if s.tag == 3)
        assert rd == 64 < 16 * 15

    def test_exchange_partners_are_xor_pairs(self):
        schedule, _ = run_rdbl(8, 800)
        for s in schedule.sends:
            if s.tag == 3:
                assert (s.src ^ s.dst) in (1, 2, 4)

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_nonzero_root(self, root):
        schedule, bufs = run_rdbl(8, 799, root=root)
        for buf in bufs:
            assert (buf.array == 5).all()

    def test_uneven_division(self):
        schedule, bufs = run_rdbl(8, 801)
        for buf in bufs:
            assert (buf.array == 5).all()

    def test_tiny_message(self):
        schedule, bufs = run_rdbl(8, 3)
        for buf in bufs:
            assert (buf.array == 5).all()


@settings(deadline=None, max_examples=20)
@given(
    logp=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_property_rdbl_correct_for_random_inputs(logp, data):
    P = 1 << logp
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    nbytes = data.draw(st.integers(min_value=1, max_value=2000))
    schedule, bufs = run_rdbl(P, nbytes, root=root)
    for buf in bufs:
        assert (buf.array == 5).all()
    rd_sends = [s for s in schedule.sends if s.tag == 3]
    assert len(rd_sends) == P * logp
