"""Tests for the dissemination barrier."""

import pytest

from repro.collectives import barrier
from repro.collectives.schedule import extract_schedule
from repro.machine import Machine, ideal
from repro.mpi import Job
from repro.util import ceil_log2


def barrier_factory(ctx):
    def program():
        return (yield from barrier(ctx))

    return program()


class TestSchedule:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_rounds_and_transfers(self, P):
        res = extract_schedule(P, barrier_factory)
        if P == 1:
            assert res.transfers == 0
            return
        rounds = ceil_log2(P)
        assert all(r.rounds == rounds for r in res.rank_results)
        assert res.transfers == P * rounds
        assert res.total_bytes == 0  # pure tokens

    def test_every_rank_hears_from_everyone_transitively(self):
        """Dissemination property: the union of (direct + indirect)
        predecessors after all rounds covers the whole communicator."""
        P = 10
        res = extract_schedule(P, barrier_factory)
        # Build per-round edges (src -> dst) in round order.
        heard = {r: {r} for r in range(P)}
        for s in res.sends:
            heard[s.dst] = heard[s.dst] | heard[s.src]
        # Sends are recorded in causal order per rank; processing in
        # global order over-approximates rounds, so require full cover.
        for r in range(P):
            assert heard[r] == set(range(P))


class TestTiming:
    def test_barrier_time_scales_with_log_p(self):
        def run(P):
            machine = Machine(ideal(nodes=4, cores_per_node=16), nranks=P)
            return Job(machine, lambda ctx: barrier_factory(ctx)).run().time

        t8, t64 = run(8), run(64)
        assert t8 > 0
        # 3 rounds vs 6 rounds of pure latency.
        assert t64 == pytest.approx(2 * t8, rel=0.15)

    def test_no_rank_exits_before_last_entry(self):
        """A rank that enters the barrier late must delay everyone."""
        machine = Machine(ideal(nodes=2, cores_per_node=8), nranks=8)

        def factory(ctx):
            def program():
                if ctx.rank == 5:
                    yield from ctx.compute(1.0)  # straggler
                yield from barrier(ctx)

            return program()

        res = Job(machine, factory).run()
        assert min(res.rank_finish_times) >= 1.0
