"""Tests for the standalone reduce-scatter collectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reduce_scatter import (
    reduce_scatter_halving,
    reduce_scatter_ring,
)
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job


def run_rs(algo, P, nbytes, timed=False, **kw):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, **kw))

        return program()

    if timed:
        machine = Machine(ideal(nodes=2, cores_per_node=max(P, 2)), nranks=P)
        return Job(machine, factory).run()
    return extract_schedule(P, factory)


class TestHalving:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 16, 32])
    def test_fully_reduced_pof2(self, P):
        res = run_rs(reduce_scatter_halving, P, 64 * max(P, 1))
        for rank, r in enumerate(res.rank_results):
            assert r.chunk == rank
            assert r.contributions == P

    def test_rejects_npof2(self):
        with pytest.raises(CollectiveError):
            run_rs(reduce_scatter_halving, 6, 600)

    def test_log_rounds_halving_payloads(self):
        res = run_rs(reduce_scatter_halving, 8, 800)
        from_rank0 = [s for s in res.sends if s.src == 0]
        assert [s.nbytes for s in from_rank0] == [400, 200, 100]
        assert res.transfers == 8 * 3

    def test_bandwidth_optimal_vs_ring_for_large_vectors(self):
        n = 1 << 22
        t_h = run_rs(reduce_scatter_halving, 16, n, timed=True).time
        t_r = run_rs(reduce_scatter_ring, 16, n, timed=True).time
        # Both move ~n(P-1)/P per rank; halving does it in log2 P steps.
        assert t_h < t_r

    def test_combine_cost(self):
        fast = run_rs(reduce_scatter_halving, 8, 1 << 20, timed=True).time
        slow = run_rs(
            reduce_scatter_halving, 8, 1 << 20, timed=True, reduce_bw=1 << 26
        ).time
        assert slow > fast


class TestRing:
    @pytest.mark.parametrize("P", [1, 2, 3, 8, 10, 17])
    def test_fully_reduced_any_p(self, P):
        res = run_rs(reduce_scatter_ring, P, 64 * max(P, 1))
        for rank, r in enumerate(res.rank_results):
            assert r.chunk == rank
            assert r.contributions == P

    def test_p_minus_1_steps(self):
        res = run_rs(reduce_scatter_ring, 10, 1000)
        assert res.transfers == 10 * 9
        for r in res.rank_results:
            assert r.sends == 9 and r.recvs == 9

    def test_partials_flow_right(self):
        res = run_rs(reduce_scatter_ring, 8, 800)
        for s in res.sends:
            assert s.dst == (s.src + 1) % 8

    def test_uneven_sizes(self):
        res = run_rs(reduce_scatter_ring, 8, 801)
        for r in res.rank_results:
            assert r.contributions == 8

    def test_validation(self):
        with pytest.raises(CollectiveError):
            run_rs(reduce_scatter_ring, 4, -1)
        with pytest.raises(CollectiveError):
            run_rs(reduce_scatter_ring, 4, 100, reduce_bw=-1)


class TestConsistencyWithAllreduce:
    def test_halving_matches_rabenseifner_first_phase(self):
        """Rabenseifner's reduce-scatter phase is exactly the halving
        algorithm: same transfer multiset (by src, dst, bytes)."""
        from repro.collectives import allreduce_rabenseifner

        P, nbytes = 8, 800

        def rab_factory(ctx):
            def program():
                return (yield from allreduce_rabenseifner(ctx, nbytes))

            return program()

        rab = extract_schedule(P, rab_factory)
        rab_rs = sorted(
            (s.src, s.dst, s.nbytes) for s in rab.sends if s.tag == 13
        )
        halv = run_rs(reduce_scatter_halving, P, nbytes)
        halv_rs = sorted((s.src, s.dst, s.nbytes) for s in halv.sends)
        assert rab_rs == halv_rs


@settings(deadline=None, max_examples=20)
@given(
    P=st.integers(min_value=1, max_value=24),
    nbytes=st.integers(min_value=0, max_value=3000),
)
def test_property_ring_reduce_scatter_always_complete(P, nbytes):
    res = run_rs(reduce_scatter_ring, P, nbytes)
    for rank, r in enumerate(res.rank_results):
        assert r.chunk == rank and r.contributions == P
