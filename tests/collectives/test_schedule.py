"""Tests for the zero-time schedule executor itself."""

import pytest

from repro.collectives.schedule import ScheduleExecutor, extract_schedule
from repro.errors import DeadlockError, SimulationError, TruncationError
from repro.machine import blocked
from repro.mpi import Communicator, RealBuffer


def prog_factory(body):
    def factory(ctx):
        return body(ctx)

    return factory


class TestExecution:
    def test_send_recv_moves_data(self):
        bufs = [RealBuffer(8, fill=3), RealBuffer(8)]

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 8)
            else:
                status = yield from ctx.recv(0, 8)
                return status.nbytes

        res = extract_schedule(2, prog_factory(body), buffers=bufs)
        assert res.rank_results[1] == 8
        assert (bufs[1].array == 3).all()

    def test_sends_are_buffered_never_block(self):
        """Both ranks send first, then receive — fine under buffering."""

        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.send(peer, 4)
            yield from ctx.recv(peer, 4)

        bufs = [RealBuffer(4), RealBuffer(4)]
        res = extract_schedule(2, prog_factory(body), buffers=bufs)
        assert res.transfers == 2

    def test_recv_cycle_deadlocks(self):
        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.recv(peer, 4)
            yield from ctx.send(peer, 4)

        with pytest.raises(DeadlockError):
            extract_schedule(2, prog_factory(body))

    def test_truncation_detected(self):
        bufs = [RealBuffer(16, fill=1), RealBuffer(16)]

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 16)
            else:
                yield from ctx.recv(0, 8)

        with pytest.raises(TruncationError):
            extract_schedule(2, prog_factory(body), buffers=bufs)

    def test_compute_is_free(self):
        def body(ctx):
            yield from ctx.compute(1e9)  # would be 30 years on the DES
            return "done"

        res = extract_schedule(1, prog_factory(body))
        assert res.rank_results == ["done"]

    def test_unknown_op_rejected(self):
        def body(ctx):
            yield 42

        with pytest.raises(SimulationError):
            extract_schedule(1, prog_factory(body))

    def test_nonblocking_and_waitall(self):
        def body(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.isend(1, 4, tag=1)
                r2 = yield from ctx.isend(1, 4, tag=2)
                yield from ctx.waitall([r1, r2])
            else:
                r1 = yield from ctx.irecv(0, 4, tag=2)
                r2 = yield from ctx.irecv(0, 4, tag=1)
                statuses = yield from ctx.waitall([r1, r2])
                return [s.tag for s in statuses]

        bufs = [RealBuffer(8), RealBuffer(8)]
        res = extract_schedule(2, prog_factory(body), buffers=bufs)
        assert res.rank_results[1] == [2, 1]


class TestRecording:
    def test_send_order_and_fields(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 10, tag=7, chunks=(3,))
            elif ctx.rank == 1:
                yield from ctx.recv(0, 10, tag=7)

        res = extract_schedule(2, prog_factory(body))
        (s,) = res.sends
        assert (s.src, s.dst, s.nbytes, s.tag, s.chunks) == (0, 1, 10, 7, (3,))
        assert s.order == 0
        assert res.total_bytes == 10

    def test_sends_from_to(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4)
                yield from ctx.send(2, 4)
            else:
                yield from ctx.recv(0, 4)

        res = extract_schedule(3, prog_factory(body))
        assert len(res.sends_from(0)) == 2
        assert len(res.sends_to(2)) == 1

    def test_transfers_by_level_needs_placement(self):
        def body(ctx):
            return
            yield

        res = extract_schedule(2, prog_factory(body))
        with pytest.raises(SimulationError):
            res.transfers_by_level()

    def test_transfers_by_level(self):
        placement = blocked(4, nodes=2, cores_per_node=2)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4)  # intra (node 0)
                yield from ctx.send(2, 4)  # inter (node 0 -> 1)
            elif ctx.rank in (1, 2):
                yield from ctx.recv(0, 4)

        res = extract_schedule(4, prog_factory(body), placement=placement)
        assert res.transfers_by_level() == (1, 1)

    def test_custom_communicator(self):
        comm = Communicator([2, 0])  # local 0 -> global 2, local 1 -> global 0

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4)
            else:
                status = yield from ctx.recv(0, 4)
                return status.source

        res = ScheduleExecutor(3, prog_factory(body), comm=comm).run()
        (s,) = res.sends
        assert (s.src, s.dst) == (2, 0)  # recorded in global ranks
        assert res.rank_results[1] == 0  # status localised to comm


class TestDeadlockReporting:
    """DeadlockError must name the blocked ranks and their parked ops."""

    def test_recv_cycle_names_ranks_and_ops(self):
        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.recv(peer, 4, tag=9)
            yield from ctx.send(peer, 4, tag=9)

        with pytest.raises(DeadlockError) as exc:
            extract_schedule(2, prog_factory(body))
        msg = str(exc.value)
        assert "rank 0 blocked in recv(src=1, tag=9, nbytes=4)" in msg
        assert "rank 1 blocked in recv(src=0, tag=9, nbytes=4)" in msg
        assert len(exc.value.blocked) == 2

    def test_waitall_deadlock_lists_pending_requests(self):
        def body(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.irecv(1, 4, tag=1)
                r2 = yield from ctx.irecv(1, 4, tag=2)
                yield from ctx.waitall([r1, r2])
            else:
                yield from ctx.send(0, 4, tag=1)  # tag=2 never sent

        with pytest.raises(DeadlockError) as exc:
            extract_schedule(2, prog_factory(body))
        msg = str(exc.value)
        assert "rank 0 blocked in waitall on 1 of 2 request(s)" in msg
        assert "recv(src=1, tag=2, nbytes=4)" in msg

    def test_mismatched_tag_reports_unexpected_message(self):
        """A send with the wrong tag parks the receiver AND shows up as an
        unexpected envelope in the deadlock report."""

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4, tag=7)
            else:
                yield from ctx.recv(0, 4, tag=5)

        with pytest.raises(DeadlockError) as exc:
            extract_schedule(2, prog_factory(body))
        msg = str(exc.value)
        assert "rank 1 blocked in recv(src=0, tag=5, nbytes=4)" in msg
        assert "unexpected(src=0, tag=7)" in msg

    def test_any_source_recv_described(self):
        from repro.mpi.ops import ANY_SOURCE

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(ANY_SOURCE, 4, tag=3)
            else:
                return
                yield

        with pytest.raises(DeadlockError) as exc:
            extract_schedule(2, prog_factory(body))
        assert "rank 0 blocked in recv(src=ANY_SOURCE, tag=3, nbytes=4)" in str(
            exc.value
        )


class TestTruncationAndTags:
    def test_truncation_via_irecv_waitall(self):
        """The nonblocking path raises TruncationError at match time too."""
        bufs = [RealBuffer(16, fill=2), RealBuffer(16)]

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 16)
            else:
                r = yield from ctx.irecv(0, 8)
                yield from ctx.waitall([r])

        with pytest.raises(TruncationError):
            extract_schedule(2, prog_factory(body), buffers=bufs)

    def test_truncation_message_names_sizes_and_rank(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 32)
            else:
                yield from ctx.recv(0, 8)

        with pytest.raises(TruncationError, match="32 bytes.*8 bytes.*rank 1"):
            extract_schedule(2, prog_factory(body))

    def test_truncation_when_recv_posted_first(self):
        """Posted-recv-then-send hits the other matching branch."""

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(1, 8)
            else:
                yield from ctx.send(0, 32)

        with pytest.raises(TruncationError):
            extract_schedule(2, prog_factory(body))

    def test_matching_tags_select_among_pending_sends(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4, tag=11, chunks=(0,))
                yield from ctx.send(1, 4, tag=12, chunks=(1,))
            else:
                s12 = yield from ctx.recv(0, 4, tag=12)
                s11 = yield from ctx.recv(0, 4, tag=11)
                return (s12.chunks, s11.chunks)

        res = extract_schedule(2, prog_factory(body))
        assert res.rank_results[1] == ((1,), (0,))

    def test_clocks_cover_all_matched_sends(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4, tag=1)
                yield from ctx.send(1, 4, tag=2)
            else:
                yield from ctx.recv(0, 4, tag=1)
                yield from ctx.recv(0, 4, tag=2)

        res = extract_schedule(2, prog_factory(body))
        assert sorted(res.issue_clock) == [0, 1]
        assert sorted(res.match_clock) == [0, 1]
        for order in (0, 1):
            assert res.issue_clock[order] < res.match_clock[order]

    def test_unmatched_send_has_no_match_clock(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.isend(1, 4, tag=1)
            return
            yield

        res = extract_schedule(2, prog_factory(body))
        assert 0 in res.issue_clock and 0 not in res.match_clock
