"""Tests for the three-phase SMP-aware broadcast."""

import pytest

from repro.collectives import bcast_scatter_ring_opt, bcast_smp
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer


def run_smp(P, nbytes, root=0, nodes=4, cores=4, inner=None, timed=False):
    machine = Machine(ideal(nodes=nodes, cores_per_node=cores), nranks=P)
    bufs = [RealBuffer(nbytes, fill=(13 if r == root else 0)) for r in range(P)]
    kwargs = {"placement": machine.placement}
    if inner is not None:
        kwargs["inner"] = inner

    def factory(ctx):
        def program():
            return (yield from bcast_smp(ctx, nbytes, root, **kwargs))

        return program()

    if timed:
        return Job(machine, factory, buffers=bufs).run(), bufs, machine
    return extract_schedule(P, factory, buffers=bufs, placement=machine.placement), bufs, machine


class TestCorrectness:
    @pytest.mark.parametrize("P,root", [(16, 0), (16, 5), (10, 9), (7, 3)])
    def test_all_ranks_complete(self, P, root):
        schedule, bufs, _ = run_smp(P, 777, root=root)
        for rank, buf in enumerate(bufs):
            assert (buf.array == 13).all(), f"rank {rank}"

    def test_single_node_degenerates_to_intra_bcast(self):
        schedule, bufs, _ = run_smp(4, 100, nodes=1, cores=8)
        intra, inter = schedule.transfers_by_level()
        assert inter == 0
        for buf in bufs:
            assert (buf.array == 13).all()

    def test_single_rank(self):
        schedule, bufs, _ = run_smp(1, 64)
        assert schedule.transfers == 0

    def test_tuned_inner_works(self):
        schedule, bufs, _ = run_smp(16, 1600, inner=bcast_scatter_ring_opt)
        for buf in bufs:
            assert (buf.array == 13).all()

    def test_missing_placement_rejected(self):
        machine = Machine(ideal(), nranks=4)

        def factory(ctx):
            def program():
                return (yield from bcast_smp(ctx, 100, 0))

            return program()

        with pytest.raises(CollectiveError):
            extract_schedule(4, factory)


class TestPhaseStructure:
    def test_inter_node_traffic_only_between_leaders(self):
        """Phase 2 is the only inter-node traffic, and it connects node
        leaders only (root acts as its node's leader)."""
        P, root = 16, 5
        schedule, _, machine = run_smp(P, 1600, root=root)
        placement = machine.placement
        root_node = placement.node_of(root)
        leaders = {
            (root if node == root_node else placement.ranks_on(node)[0])
            for node in placement.used_nodes()
        }
        for s in schedule.sends:
            if placement.node_of(s.src) != placement.node_of(s.dst):
                assert s.src in leaders and s.dst in leaders

    def test_intra_phases_use_binomial_tag(self):
        schedule, _, machine = run_smp(16, 1600)
        placement = machine.placement
        for s in schedule.sends:
            if placement.node_of(s.src) == placement.node_of(s.dst):
                assert s.tag == 4  # binomial bcast tag

    def test_fewer_inter_node_messages_than_flat_ring(self):
        """The point of SMP awareness: only leaders talk across nodes."""
        from repro.collectives import bcast_scatter_ring_native

        P = 16
        machine = Machine(ideal(nodes=4, cores_per_node=4), nranks=P)

        def flat_factory(ctx):
            def program():
                return (yield from bcast_scatter_ring_native(ctx, 1600, 0))

            return program()

        flat = extract_schedule(P, flat_factory, placement=machine.placement)
        smp, _, _ = run_smp(P, 1600)
        _, flat_inter = flat.transfers_by_level()
        _, smp_inter = smp.transfers_by_level()
        assert smp_inter < flat_inter

    def test_timed_run_completes(self):
        res, bufs, _ = run_smp(16, 4096, timed=True)
        assert res.time > 0
        for buf in bufs:
            assert (buf.array == 13).all()
