"""Tests for the enclosed (native) and tuned ring allgather phases —
the heart of the paper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    bcast_scatter_ring_native,
    bcast_scatter_ring_opt,
    subtree_chunks,
)
from repro.collectives.schedule import extract_schedule
from repro.mpi import RealBuffer


def run_bcast(algo, P, nbytes, root=0, real=True):
    bufs = None
    if real:
        bufs = [RealBuffer(nbytes, fill=(9 if r == root else 0)) for r in range(P)]

    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, root))

        return program()

    return extract_schedule(P, factory, buffers=bufs), bufs


def ring_transfers(schedule, P):
    """Ring-phase transfers = all sends minus the P-1 scatter sends."""
    scatter = sum(1 for s in schedule.sends if s.tag == 1)
    ring = sum(1 for s in schedule.sends if s.tag == 2)
    assert scatter + ring == schedule.transfers
    return ring


def expected_saved(P):
    return sum(subtree_chunks(r, P) for r in range(P)) - P


class TestPaperTransferCounts:
    def test_p8_native_56(self):
        schedule, _ = run_bcast(bcast_scatter_ring_native, 8, 800)
        assert ring_transfers(schedule, 8) == 56  # 8 x 7, Section III

    def test_p8_tuned_44(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 8, 800)
        assert ring_transfers(schedule, 8) == 44  # "reduces it by 12"

    def test_p10_native_90(self):
        schedule, _ = run_bcast(bcast_scatter_ring_native, 10, 1000)
        assert ring_transfers(schedule, 10) == 90

    def test_p10_tuned_75(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 10, 1000)
        assert ring_transfers(schedule, 10) == 75  # "reduced by 15"

    @pytest.mark.parametrize("P", [2, 3, 4, 5, 8, 10, 16, 17, 33])
    def test_closed_form(self, P):
        nbytes = 128 * P
        native, _ = run_bcast(bcast_scatter_ring_native, P, nbytes)
        tuned, _ = run_bcast(bcast_scatter_ring_opt, P, nbytes)
        assert ring_transfers(native, P) == P * (P - 1)
        assert ring_transfers(tuned, P) == P * (P - 1) - expected_saved(P)


class TestDataCorrectness:
    @pytest.mark.parametrize("algo", [bcast_scatter_ring_native, bcast_scatter_ring_opt])
    @pytest.mark.parametrize("P,nbytes,root", [(8, 800, 0), (10, 999, 3), (7, 123, 6)])
    def test_every_rank_gets_all_bytes(self, algo, P, nbytes, root):
        schedule, bufs = run_bcast(algo, P, nbytes, root=root)
        for rank, buf in enumerate(bufs):
            assert (buf.array == 9).all(), f"rank {rank} incomplete"
        for res in schedule.rank_results:
            res.assert_complete()

    def test_native_reports_redundancy(self):
        schedule, _ = run_bcast(bcast_scatter_ring_native, 8, 800)
        total_redundant = sum(r.redundant_recvs for r in schedule.rank_results)
        # The enclosed ring redelivers exactly the chunks the tuned ring
        # skips: 12 at P=8.
        assert total_redundant == 12

    def test_tuned_never_redundant(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 10, 1000)
        assert all(r.redundant_recvs == 0 for r in schedule.rank_results)

    def test_tuned_root_never_receives_ring_traffic(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 8, 800)
        ring_to_root = [s for s in schedule.sends if s.tag == 2 and s.dst == 0]
        assert ring_to_root == []

    def test_native_root_does_receive_ring_traffic(self):
        schedule, _ = run_bcast(bcast_scatter_ring_native, 8, 800)
        ring_to_root = [s for s in schedule.sends if s.tag == 2 and s.dst == 0]
        assert len(ring_to_root) == 7  # the enclosed ring's waste


class TestRingStructure:
    def test_ring_sends_go_right_only(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 8, 800, root=2)
        for s in schedule.sends:
            if s.tag == 2:
                assert s.dst == (s.src + 1) % 8

    def test_each_ring_send_carries_one_chunk(self):
        schedule, _ = run_bcast(bcast_scatter_ring_opt, 8, 800)
        for s in schedule.sends:
            if s.tag == 2:
                assert len(s.chunks) == 1

    def test_uneven_division_zero_byte_steps_still_counted(self):
        # 9 bytes over 8 ranks: trailing chunks are empty but the ring
        # still issues the sendrecv (as MPICH does).
        schedule, bufs = run_bcast(bcast_scatter_ring_native, 8, 9)
        assert ring_transfers(schedule, 8) == 56
        for buf in bufs:
            assert (buf.array == 9).all()

    def test_nbytes_smaller_than_ranks(self):
        schedule, bufs = run_bcast(bcast_scatter_ring_opt, 8, 3)
        for buf in bufs:
            assert (buf.array == 9).all()


@settings(deadline=None, max_examples=25)
@given(
    P=st.integers(min_value=2, max_value=24),
    data=st.data(),
)
def test_property_both_rings_complete_and_counts_hold(P, data):
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    nbytes = data.draw(st.integers(min_value=1, max_value=3000))
    native, nbufs = run_bcast(bcast_scatter_ring_native, P, nbytes, root=root)
    tuned, tbufs = run_bcast(bcast_scatter_ring_opt, P, nbytes, root=root)
    for buf in nbufs + tbufs:
        assert (buf.array == 9).all()
    n_ring = ring_transfers(native, P)
    t_ring = ring_transfers(tuned, P)
    assert n_ring == P * (P - 1)
    assert t_ring == P * (P - 1) - expected_saved(P)
    assert t_ring < n_ring
    # Byte traffic: tuned moves no more bytes than native.
    t_bytes = sum(s.nbytes for s in tuned.sends)
    n_bytes = sum(s.nbytes for s in native.sends)
    assert t_bytes <= n_bytes
