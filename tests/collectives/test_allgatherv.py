"""Tests for ring allgatherv (variable blocks) and sub-communicator
concurrency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import allgatherv_ring, displacements
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, ideal
from repro.mpi import Communicator, Job, RealBuffer


def run_agv(counts, timed=False):
    P = len(counts)
    disps = displacements(counts)
    total = sum(counts)
    bufs = []
    for r in range(P):
        buf = RealBuffer(total)
        buf.array[disps[r] : disps[r] + counts[r]] = r + 1
        bufs.append(buf)

    def factory(ctx):
        def program():
            return (yield from allgatherv_ring(ctx, counts))

        return program()

    if timed:
        machine = Machine(ideal(nodes=2, cores_per_node=max(P, 2)), nranks=P)
        return Job(machine, factory, buffers=bufs).run(), bufs
    return extract_schedule(P, factory, buffers=bufs), bufs


def check(bufs, counts):
    disps = displacements(counts)
    for rank, buf in enumerate(bufs):
        for b, c in enumerate(counts):
            blk = buf.array[disps[b] : disps[b] + c]
            assert (blk == b + 1).all(), f"rank {rank} block {b}"


class TestDisplacements:
    def test_prefix_sums(self):
        assert displacements([3, 0, 5]) == [0, 3, 3]

    def test_empty(self):
        assert displacements([]) == []

    def test_negative_rejected(self):
        with pytest.raises(CollectiveError):
            displacements([1, -2])


class TestAllgathervRing:
    def test_uniform_counts(self):
        res, bufs = run_agv([16] * 8)
        check(bufs, [16] * 8)
        assert res.transfers == 8 * 7

    def test_wildly_uneven_counts(self):
        counts = [100, 0, 7, 3000, 1, 0, 42]
        res, bufs = run_agv(counts)
        check(bufs, counts)

    def test_zero_blocks_still_take_ring_slots(self):
        counts = [10, 0, 10, 0]
        res, _ = run_agv(counts)
        assert res.transfers == 4 * 3  # including the zero-byte slots

    def test_single_rank(self):
        res, bufs = run_agv([64])
        assert res.transfers == 0

    def test_count_arity_checked(self):
        def factory(ctx):
            def program():
                return (yield from allgatherv_ring(ctx, [1, 2]))

            return program()

        with pytest.raises(CollectiveError):
            extract_schedule(3, factory)

    def test_timed_run(self):
        res, bufs = run_agv([256, 512, 128, 1024], timed=True)
        check(bufs, [256, 512, 128, 1024])
        assert res.time > 0

    @settings(deadline=None, max_examples=25)
    @given(counts=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=12))
    def test_property_any_counts(self, counts):
        res, bufs = run_agv(counts)
        check(bufs, counts)
        total_sent = sum(s.nbytes for s in res.sends)
        # Each block travels P-1 hops.
        assert total_sent == (len(counts) - 1) * sum(counts)


class TestConcurrentSubCommunicators:
    def test_two_halves_run_independent_collectives(self):
        """Two disjoint sub-communicators run ring allgathers at the same
        time; tags and communicator translation keep them from cross-
        matching."""
        P = 8
        machine = Machine(ideal(nodes=2, cores_per_node=4), nranks=P)
        world = Communicator.world(P)
        counts = [32] * (P // 2)
        halves = world.split(lambda local: local // (P // 2))
        total = sum(counts)

        bufs = []
        for r in range(P):
            buf = RealBuffer(total)
            local = r % (P // 2)
            buf.array[local * 32 : (local + 1) * 32] = local + 1
            bufs.append(buf)

        def factory(ctx):
            half = halves[ctx.rank // (P // 2)]
            sub = ctx.sub(half)

            def program():
                return (yield from allgatherv_ring(sub, counts))

            return program()

        Job(machine, factory, buffers=bufs).run()
        for r, buf in enumerate(bufs):
            for b in range(P // 2):
                assert (buf.array[b * 32 : (b + 1) * 32] == b + 1).all(), (r, b)
