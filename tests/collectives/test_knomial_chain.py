"""Tests for the extension broadcasts: k-nomial tree and pipelined chain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import bcast_binomial, bcast_chain, bcast_knomial
from repro.collectives.knomial import knomial_rounds
from repro.collectives.schedule import extract_schedule
from repro.errors import CollectiveError
from repro.machine import Machine, hornet, ideal
from repro.mpi import Job, RealBuffer


def run(algo, P, nbytes, root=0, timed=False, spec=None, **kw):
    bufs = [RealBuffer(nbytes, fill=(9 if r == root else 0)) for r in range(P)]

    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, root, **kw))

        return program()

    if timed:
        machine = Machine(spec or ideal(nodes=4, cores_per_node=16), nranks=P)
        res = Job(machine, factory, buffers=bufs).run()
    else:
        res = extract_schedule(P, factory, buffers=bufs)
    return res, bufs


def assert_delivered(bufs):
    for rank, buf in enumerate(bufs):
        assert (buf.array == 9).all(), f"rank {rank}"


class TestKnomial:
    @pytest.mark.parametrize("radix", [2, 3, 4, 8])
    @pytest.mark.parametrize("P,root", [(1, 0), (2, 1), (9, 4), (16, 0), (27, 26)])
    def test_delivers(self, radix, P, root):
        _, bufs = run(bcast_knomial, P, 500, root=root, radix=radix)
        assert_delivered(bufs)

    def test_radix2_schedule_equals_binomial(self):
        P, nbytes = 16, 1600
        kn, _ = run(bcast_knomial, P, nbytes, radix=2)
        bi, _ = run(bcast_binomial, P, nbytes)
        assert [(s.src, s.dst, s.nbytes) for s in kn.sends] == [
            (s.src, s.dst, s.nbytes) for s in bi.sends
        ]

    def test_transfer_count_always_p_minus_1(self):
        for radix in (2, 3, 5):
            res, _ = run(bcast_knomial, 17, 170, radix=radix)
            assert res.transfers == 16

    def test_rounds_shrink_with_radix(self):
        assert knomial_rounds(64, 2) == 6
        assert knomial_rounds(64, 4) == 3
        assert knomial_rounds(64, 8) == 2
        assert knomial_rounds(65, 8) == 3

    def test_higher_radix_wins_small_eager_messages(self):
        """Fewer rounds -> lower latency when alpha dominates — provided
        the protocol is eager, so a parent's k-1 child sends overlap
        instead of serialising a rendezvous round trip each."""
        spec = ideal(nodes=4, cores_per_node=16, eager_threshold=4096)
        t2, _ = run(bcast_knomial, 64, 64, radix=2, timed=True, spec=spec)
        t8, _ = run(bcast_knomial, 64, 64, radix=8, timed=True, spec=spec)
        assert t8.time < t2.time

    def test_radix2_wins_small_rendezvous_messages(self):
        """Under rendezvous each child send blocks on a full handshake,
        so high fan-out serialises and the binomial tree wins even for
        tiny payloads — the protocol interaction the ablation documents."""
        t2, _ = run(bcast_knomial, 64, 64, radix=2, timed=True)  # ideal: rendezvous
        t8, _ = run(bcast_knomial, 64, 64, radix=8, timed=True)
        assert t2.time < t8.time

    def test_radix2_wins_large_messages(self):
        """High radix serialises k-1 full-size sends at the root."""
        n = 1 << 22
        t2, _ = run(bcast_knomial, 64, n, radix=2, timed=True)
        t8, _ = run(bcast_knomial, 64, n, radix=8, timed=True)
        assert t2.time < t8.time

    def test_bad_radix(self):
        with pytest.raises(CollectiveError):
            run(bcast_knomial, 4, 100, radix=1)


class TestChain:
    @pytest.mark.parametrize("P,root,seg", [(1, 0, 64), (2, 0, 64), (8, 3, 100), (10, 9, 7)])
    def test_delivers(self, P, root, seg):
        _, bufs = run(bcast_chain, P, 501, root=root, segment_bytes=seg)
        assert_delivered(bufs)

    def test_transfer_count(self):
        # (P-1) links x nseg segments.
        res, _ = run(bcast_chain, 8, 1000, segment_bytes=100)
        assert res.transfers == 7 * 10

    def test_zero_bytes(self):
        res, _ = run(bcast_chain, 8, 0)
        assert res.transfers == 0

    def test_pipelining_beats_unsegmented_chain(self):
        """Many segments overlap the links; one segment serialises them."""
        n = 1 << 22
        piped, _ = run(bcast_chain, 16, n, segment_bytes=1 << 18, timed=True)
        serial, _ = run(bcast_chain, 16, n, segment_bytes=n, timed=True)
        assert piped.time < serial.time / 2

    def test_bad_segment(self):
        with pytest.raises(CollectiveError):
            run(bcast_chain, 4, 100, segment_bytes=0)

    def test_chain_competitive_with_ring_for_lmsg(self):
        """Sanity: on a contended machine the pipelined chain lands in
        the same ballpark as the scatter-ring broadcast (within 3x)."""
        from repro.collectives import bcast_scatter_ring_opt

        n = 1 << 21
        spec = hornet(nodes=2)
        chain, _ = run(bcast_chain, 16, n, segment_bytes=1 << 17, timed=True, spec=spec)
        ring, _ = run(bcast_scatter_ring_opt, 16, n, timed=True, spec=spec)
        assert chain.time < 3 * ring.time
        assert ring.time < 3 * chain.time


@settings(deadline=None, max_examples=20)
@given(
    P=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
def test_property_extensions_deliver(P, data):
    root = data.draw(st.integers(min_value=0, max_value=P - 1))
    nbytes = data.draw(st.integers(min_value=0, max_value=2000))
    radix = data.draw(st.integers(min_value=2, max_value=6))
    seg = data.draw(st.integers(min_value=1, max_value=512))
    if nbytes:
        _, bufs = run(bcast_knomial, P, nbytes, root=root, radix=radix)
        assert_delivered(bufs)
        _, bufs = run(bcast_chain, P, nbytes, root=root, segment_bytes=seg)
        assert_delivered(bufs)
