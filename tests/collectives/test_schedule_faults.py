"""Static fault suppression in the zero-time schedule executor."""

import pytest

from repro.collectives.schedule import ScheduleExecutor
from repro.errors import DeadlockError
from repro.sim import FaultPlan, LinkRule


def ring_factory(nranks, nbytes=1024):
    """Eager-safe ring: everyone isends right, then recvs left."""

    def factory(ctx):
        def program():
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            req = yield from ctx.isend(right, nbytes, tag=3)
            yield from ctx.recv(left, nbytes, tag=3)
            yield from ctx.wait(req)
            return None

        return program()

    return factory


class TestSuppression:
    def test_drop_starves_receiver_and_names_the_event(self):
        plan = FaultPlan.none(name="cut").with_rule(
            LinkRule(src=0, dst=1, drop_p=1.0, label="cut")
        )
        executor = ScheduleExecutor(4, ring_factory(4), faults=plan)
        with pytest.raises(DeadlockError) as exc_info:
            executor.run()
        text = str(exc_info.value)
        assert "injected" in text
        assert "drop 0->1 tag=3 op#0" in text and "(cut)" in text
        assert executor.suppressed  # audit list populated

    def test_zero_plan_matches_unfaulted_run(self):
        clean = ScheduleExecutor(4, ring_factory(4)).run()
        zero = ScheduleExecutor(4, ring_factory(4), faults=FaultPlan.none()).run()
        assert len(zero.sends) == len(clean.sends) == 4
        assert zero.observed == clean.observed

    def test_suppressed_send_still_recorded_not_delivered(self):
        """The drop eats delivery, not the send record: counting stays
        faithful to what the sender issued."""
        plan = FaultPlan.none(name="cut").with_rule(
            LinkRule(src=2, dst=3, drop_p=1.0)
        )
        executor = ScheduleExecutor(4, ring_factory(4), faults=plan)
        with pytest.raises(DeadlockError):
            executor.run()
        assert len(executor.sends) == 4  # all four sends were issued
        assert len(executor.suppressed) == 1
