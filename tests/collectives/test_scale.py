"""Large-P structural tests via the zero-cost paths (no DES).

The closed forms and the schedule executor are cheap enough to exercise
the paper's arithmetic at scales the timed simulator would labour over
— up to 4096 ranks for pure math, 512 for full schedule extraction.
"""

import pytest

from repro.collectives import (
    bcast_scatter_ring_opt,
    extract_schedule,
    subtree_chunks,
    tuned_ring_role,
)
from repro.core import (
    ring_transfers_native,
    ring_transfers_tuned,
    subtree_sum,
    transfers_saved,
)


class TestClosedFormsAtScale:
    @pytest.mark.parametrize("P", [512, 1000, 2048, 4096])
    def test_formulas_consistent(self, P):
        assert ring_transfers_tuned(P) == ring_transfers_native(P) - transfers_saved(P)
        assert transfers_saved(P) == subtree_sum(P) - P
        # Savings fraction decays like ~log2(P)/2 / (P-1).
        frac = transfers_saved(P) / ring_transfers_native(P)
        import math

        approx = (math.log2(P) / 2 + 1) / (P - 1)
        assert frac == pytest.approx(approx, rel=0.35)

    @pytest.mark.parametrize("P", [512, 1023, 2048])
    def test_role_pairing_at_scale(self, P):
        for r in range(P):
            step, flag = tuned_ring_role(r, P)
            assert 1 <= step <= P
            if flag == 1 and step >= 2:
                nstep, nflag = tuned_ring_role((r + 1) % P, P)
                assert (nstep, nflag) == (step, 0)
            if flag == 0:
                assert step == subtree_chunks(r, P)

    def test_paper_deduction_savings_strictly_increasing_doubling(self):
        prev = 0
        for logp in range(1, 13):
            saved = transfers_saved(1 << logp)
            assert saved > prev
            prev = saved


class TestScheduleAtScale:
    @pytest.mark.parametrize("P", [257, 512])
    def test_full_schedule_extraction(self, P):
        """Extract the complete tuned-broadcast schedule at hundreds of
        ranks and verify the exact count plus per-rank completeness."""
        nbytes = 64 * P

        def factory(ctx):
            def program():
                return (yield from bcast_scatter_ring_opt(ctx, nbytes, 0))

            return program()

        schedule = extract_schedule(P, factory)
        ring = sum(1 for s in schedule.sends if s.tag == 2)
        assert ring == ring_transfers_tuned(P)
        for res in schedule.rank_results:
            res.assert_complete()

    def test_512_rank_savings_closed_form(self):
        # Power-of-two: S = P (log2 P + 2) / 2 = 512 * 11 / 2 = 2816,
        # so the tuned ring saves 2816 - 512 = 2304 transfers.
        assert subtree_sum(512) == 2816
        assert transfers_saved(512) == 2304
        assert ring_transfers_native(512) - ring_transfers_tuned(512) == 2304