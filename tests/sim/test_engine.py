"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(3.0, fired.append, "c")
        eng.schedule(1.0, fired.append, "a")
        eng.schedule(2.0, fired.append, "b")
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        eng = Engine()
        fired = []
        for label in "abcde":
            eng.schedule(1.0, fired.append, label)
        eng.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        final = eng.run()
        assert seen == [2.5]
        assert final == 2.5

    def test_schedule_at_absolute(self):
        eng = Engine()
        seen = []
        eng.schedule_at(4.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: eng.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_callbacks_can_schedule(self):
        eng = Engine()
        fired = []

        def first():
            fired.append("first")
            eng.schedule(1.0, lambda: fired.append("second"))

        eng.schedule(1.0, first)
        final = eng.run()
        assert fired == ["first", "second"]
        assert final == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(1.0, fired.append, "x")
        handle.cancel()
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        eng.run()

    def test_pending_ignores_cancelled(self):
        eng = Engine()
        h1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        h1.cancel()
        assert eng.pending == 1
        assert not eng.empty

    def test_repeated_cancel_decrements_once(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h.cancel()
        h.cancel()
        h.cancel()
        assert eng.pending == 1

    def test_cancel_after_fire_keeps_count_consistent(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.pending == 0
        h.cancel()  # stale token: must not underflow the live counter
        assert eng.pending == 0
        assert eng.empty

    def test_pending_tracks_fires(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        eng.step()
        assert eng.pending == 1
        eng.step()
        assert eng.pending == 0


class TestRun:
    def test_run_until_stops_early(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, "a")
        eng.schedule(5.0, fired.append, "b")
        final = eng.run(until=2.0)
        assert fired == ["a"]
        assert final == 2.0
        # Remaining event still fires on the next run.
        eng.run()
        assert fired == ["a", "b"]

    def test_run_not_reentrant(self):
        eng = Engine()
        errors = []

        def recurse():
            try:
                eng.run()
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, recurse)
        eng.run()
        assert len(errors) == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_step_fires_one(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, 1)
        eng.schedule(2.0, fired.append, 2)
        assert eng.step() is True
        assert fired == [1]


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_property_fire_order_sorted_and_clock_monotone(delays):
    eng = Engine()
    times = []
    for d in delays:
        eng.schedule(d, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
    assert eng.now == max(delays)


@given(
    seed_delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_property_determinism(seed_delays):
    def run_once():
        eng = Engine()
        order = []
        for i, d in enumerate(seed_delays):
            eng.schedule(d, order.append, (d, i))
        eng.run()
        return order

    assert run_once() == run_once()
