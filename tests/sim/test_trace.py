"""Tests for trace recording and the RNG streams."""

import math

import pytest

from repro.sim import Trace, NullTrace, RngStreams
from repro.errors import ConfigurationError


class TestTrace:
    def test_emit_and_len(self):
        tr = Trace()
        tr.emit(0.0, "send", src=0, dst=1)
        tr.emit(1.0, "recv", src=0, dst=1)
        assert len(tr) == 2

    def test_field_access(self):
        tr = Trace()
        tr.emit(0.5, "send", src=3, nbytes=100)
        rec = tr.records[0]
        assert rec.src == 3 and rec.nbytes == 100 and rec.time == 0.5
        with pytest.raises(AttributeError):
            rec.missing_field

    def test_by_kind_and_where(self):
        tr = Trace()
        tr.emit(0.0, "send", src=0)
        tr.emit(0.0, "send", src=1)
        tr.emit(1.0, "recv", src=0)
        assert len(tr.by_kind("send")) == 2
        assert len(tr.where("send", src=1)) == 1
        assert len(tr.where(src=0)) == 2

    def test_kinds_histogram(self):
        tr = Trace()
        for _ in range(3):
            tr.emit(0.0, "a")
        tr.emit(0.0, "b")
        assert tr.kinds() == {"a": 3, "b": 1}

    def test_last_time(self):
        tr = Trace()
        assert tr.last_time() == 0.0
        tr.emit(4.0, "x")
        assert tr.last_time() == 4.0

    def test_iteration(self):
        tr = Trace()
        tr.emit(0.0, "a")
        assert [r.kind for r in tr] == ["a"]

    def test_repr_is_informative(self):
        tr = Trace()
        tr.emit(1.0, "send", dst=2)
        assert "send" in repr(tr.records[0])
        assert "dst=2" in repr(tr.records[0])

    def test_null_trace_drops(self):
        tr = NullTrace()
        tr.emit(0.0, "send")
        assert len(tr) == 0
        assert not tr.enabled


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(7).stream("latency").random(5)
        b = RngStreams(7).stream("latency").random(5)
        assert (a == b).all()

    def test_streams_independent_of_creation_order(self):
        r1 = RngStreams(7)
        x_first = r1.stream("x").random()
        r2 = RngStreams(7)
        r2.stream("y")  # create another stream first
        x_second = r2.stream("x").random()
        assert x_first == x_second

    def test_different_names_differ(self):
        r = RngStreams(0)
        assert r.stream("a").random() != r.stream("b").random()

    def test_stream_cached(self):
        r = RngStreams(0)
        assert r.stream("a") is r.stream("a")

    def test_zero_sigma_jitter_is_exactly_one(self):
        assert RngStreams(1).jitter_factor("j", 0.0) == 1.0

    def test_jitter_positive(self):
        r = RngStreams(3)
        for _ in range(100):
            assert r.jitter_factor("j", 0.3) > 0.0

    def test_jitter_mean_near_one(self):
        r = RngStreams(5)
        draws = [r.jitter_factor("j", 0.2) for _ in range(4000)]
        assert math.isclose(sum(draws) / len(draws), 1.0, rel_tol=0.05)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RngStreams(-1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            RngStreams(0).jitter_factor("j", -0.1)
