"""Unit tests for the seeded deterministic fault plans."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sim import (
    Blackout,
    FaultDecision,
    FaultPlan,
    LatencySpike,
    LinkRule,
)


class TestPredicates:
    def test_zero_plan(self):
        plan = FaultPlan.none(seed=3)
        assert plan.is_zero and not plan.lossy
        assert plan.crashed_ranks() == ()
        assert plan.decide(0, 1, 7, 0) is FaultDecision.CLEAN

    def test_uniform_zero_probabilities_is_zero(self):
        assert FaultPlan.uniform(seed=1).is_zero

    def test_lossy_sources(self):
        assert FaultPlan.uniform(drop_p=0.1).lossy
        assert FaultPlan.uniform(corrupt_p=0.1).lossy
        assert not FaultPlan.uniform(dup_p=0.5).lossy
        assert not FaultPlan.uniform(extra_latency=1e-6).lossy
        assert FaultPlan.none().with_blackout(Blackout(t0=0, t1=1e-6)).lossy
        assert FaultPlan.none().with_crash(2).lossy
        assert not FaultPlan.none().with_slowdown(2, 3.0).lossy

    def test_crashed_ranks_window(self):
        plan = FaultPlan.none().with_crash(1).with_crash(4, at=5e-6)
        assert plan.crashed_ranks() == (1, 4)
        assert plan.crashed_ranks(before=1e-6) == (1,)


class TestDecide:
    def test_deterministic_and_order_independent(self):
        plan = FaultPlan.uniform(seed=11, drop_p=0.3, dup_p=0.2, corrupt_p=0.1)
        coords = [
            (s, d, t, o)
            for s in range(4)
            for d in range(4)
            if s != d
            for t in (0, 7)
            for o in range(5)
        ]
        forward = [plan.decide(*c) for c in coords]
        backward = [plan.decide(*c) for c in reversed(coords)]
        assert forward == list(reversed(backward))

    def test_seed_changes_decisions(self):
        coords = [(0, 1, 7, o) for o in range(64)]
        a = [FaultPlan.uniform(seed=0, drop_p=0.5).decide(*c).drop for c in coords]
        b = [FaultPlan.uniform(seed=1, drop_p=0.5).decide(*c).drop for c in coords]
        assert a != b

    def test_drop_frequency_tracks_probability(self):
        plan = FaultPlan.uniform(seed=0, drop_p=0.5)
        drops = sum(
            plan.decide(s, d, 0, o).drop
            for s in range(4)
            for d in range(4)
            if s != d
            for o in range(100)
        )
        assert 480 <= drops <= 720  # 1200 coins at p=0.5

    def test_op_window_targeting(self):
        rule = LinkRule(src=0, dst=1, op_lo=2, op_hi=3, drop_p=1.0, label="third")
        plan = FaultPlan.none().with_rule(rule)
        assert not plan.decide(0, 1, 0, 1).drop
        decision = plan.decide(0, 1, 0, 2)
        assert decision.drop and "third" in decision.cause
        assert not plan.decide(0, 1, 0, 3).drop
        assert not plan.decide(1, 0, 0, 2).drop  # reverse link untouched

    def test_crash_drops_both_directions_after_crash_time(self):
        plan = FaultPlan.none().with_crash(2, at=1e-6)
        assert not plan.decide(0, 2, 0, 0, now=0.0).drop
        assert plan.decide(0, 2, 0, 0, now=2e-6).drop
        assert plan.decide(2, 0, 0, 0, now=2e-6).drop
        assert not plan.decide(0, 1, 0, 0, now=2e-6).drop

    def test_blackout_window(self):
        plan = FaultPlan.none().with_blackout(Blackout(t0=1e-6, t1=2e-6))
        assert not plan.decide(0, 1, 0, 0, now=0.5e-6).drop
        assert plan.decide(0, 1, 0, 0, now=1.5e-6).drop
        assert not plan.decide(0, 1, 0, 0, now=2e-6).drop  # t1 exclusive

    def test_spike_and_slowdown_shape_latency(self):
        plan = (
            FaultPlan.uniform(extra_latency=1e-6)
            .with_spike(LatencySpike(t0=0.0, t1=1e-3, extra_latency=2e-6))
            .with_slowdown(1, 4.0)
        )
        d = plan.decide(0, 1, 0, 0, now=0.0)
        assert d.extra_latency == pytest.approx(3e-6)
        assert d.latency_factor == pytest.approx(4.0)
        off_window = plan.decide(0, 1, 0, 0, now=2e-3)
        assert off_window.extra_latency == pytest.approx(1e-6)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
        tag=st.integers(min_value=-1, max_value=100),
        op=st.integers(min_value=0, max_value=1000),
    )
    def test_decide_is_pure(self, seed, src, dst, tag, op):
        plan = FaultPlan.uniform(seed=seed, drop_p=0.4, dup_p=0.3, corrupt_p=0.2)
        assert plan.decide(src, dst, tag, op) == plan.decide(src, dst, tag, op)


class TestSerialisation:
    def _full_plan(self):
        return (
            FaultPlan.uniform(seed=9, drop_p=0.1, dup_p=0.2, name="full")
            .with_rule(LinkRule(src=1, dst=2, tag=7, op_hi=4, corrupt_p=0.5))
            .with_blackout(Blackout(t0=1e-6, t1=2e-6, label="b"))
            .with_spike(LatencySpike(t0=0.0, t1=1e-6, extra_latency=3e-6))
            .with_crash(3, at=4e-6)
            .with_slowdown(2, 2.5)
        )

    def test_round_trip(self):
        plan = self._full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_digest_stable_and_discriminating(self):
        plan = self._full_plan()
        assert plan.digest() == FaultPlan.from_dict(plan.to_dict()).digest()
        assert plan.digest() != FaultPlan.none().digest()
        a = FaultPlan.uniform(seed=0, drop_p=0.1)
        b = FaultPlan.uniform(seed=1, drop_p=0.1)
        assert a.digest() != b.digest()

    def test_describe_names_everything(self):
        text = self._full_plan().describe()
        assert "full" in text and "blackout" in text and "crashed" in text


class TestValidation:
    def test_bad_probability(self):
        with pytest.raises(ConfigurationError):
            LinkRule(drop_p=1.5)

    def test_bad_windows(self):
        with pytest.raises(ConfigurationError):
            Blackout(t0=2e-6, t1=1e-6)
        with pytest.raises(ConfigurationError):
            LatencySpike(t0=0.0, t1=0.0, extra_latency=1e-6)

    def test_bad_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.none().with_slowdown(0, 0.5)

    def test_negative_seed(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=-1)
