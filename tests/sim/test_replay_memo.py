"""Tests for the cross-run shared solve-memo store (repro.sim.replay).

The replay engine memoises water-filling solves by the structural
signature ``(capacities, class_index)``; the shared store lets every
engine with the same signature — across runs in one process, e.g. a
sweep batch or a service worker — reuse each other's solves. The
non-negotiable property: memo state never changes a record. Warm and
cold runs, shared and private modes, must agree bitwise — including the
``solver_rounds`` telemetry, which replays the stored kernel round count
on a hit.
"""

import dataclasses

import pytest

from repro.core.api import simulate_bcast
from repro.machine import hornet
from repro.sim.replay import (
    SOLVE_MEMO_ENV,
    clear_solve_memo,
    shared_solve_memo,
    solve_memo_entries,
    solve_memo_mode,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_solve_memo()
    yield
    clear_solve_memo()


def run_point(nbytes=65536, algorithm="scatter_ring_opt"):
    return simulate_bcast(
        hornet(nodes=4), nranks=8, nbytes=nbytes, algorithm=algorithm
    )


def det_fields(rec):
    d = dataclasses.asdict(rec)
    d.pop("solver_time_s")
    return d


class TestMode:
    def test_defaults_to_shared(self, monkeypatch):
        monkeypatch.delenv(SOLVE_MEMO_ENV, raising=False)
        assert solve_memo_mode() == "shared"

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(SOLVE_MEMO_ENV, "private")
        assert solve_memo_mode() == "private"

    def test_private_mode_bypasses_store(self, monkeypatch):
        monkeypatch.setenv(SOLVE_MEMO_ENV, "private")
        run_point()
        assert solve_memo_entries() == 0

    def test_shared_mode_populates_store(self, monkeypatch):
        monkeypatch.delenv(SOLVE_MEMO_ENV, raising=False)
        run_point()
        assert solve_memo_entries() > 0


class TestDeterminism:
    def test_warm_equals_cold_bitwise(self, monkeypatch):
        monkeypatch.delenv(SOLVE_MEMO_ENV, raising=False)
        cold = run_point()
        assert solve_memo_entries() > 0  # store is now warm
        warm = run_point()
        assert warm == cold
        assert det_fields(warm) == det_fields(cold)
        # solver_rounds is the memo-sensitive field: hits must replay the
        # stored kernel round count, not skip it.
        assert warm.solver_rounds == cold.solver_rounds

    def test_shared_equals_private(self, monkeypatch):
        monkeypatch.delenv(SOLVE_MEMO_ENV, raising=False)
        shared = run_point()
        clear_solve_memo()
        monkeypatch.setenv(SOLVE_MEMO_ENV, "private")
        private = run_point()
        assert det_fields(shared) == det_fields(private)

    def test_warm_across_sizes_and_algorithms(self, monkeypatch):
        """A batch along the size axis stays bitwise-correct while the
        shared store accumulates entries between points."""
        monkeypatch.delenv(SOLVE_MEMO_ENV, raising=False)
        grid = [
            (a, n)
            for a in ("scatter_ring_native", "scatter_ring_opt")
            for n in (16 * 1024, 64 * 1024, 256 * 1024)
        ]
        warm = [run_point(nbytes=n, algorithm=a) for a, n in grid]
        for (a, n), rec in zip(grid, warm):
            clear_solve_memo()
            cold = run_point(nbytes=n, algorithm=a)
            assert det_fields(rec) == det_fields(cold), (a, n)


class TestStore:
    def test_clear_drops_everything(self):
        run_point()
        assert solve_memo_entries() > 0
        assert clear_solve_memo() > 0  # counts structures, not solves
        assert solve_memo_entries() == 0
        assert clear_solve_memo() == 0

    def test_signature_isolation(self):
        memo_a = shared_solve_memo(((1.0, 2.0), (0, 1)))
        memo_b = shared_solve_memo(((1.0, 2.0), (0, 2)))
        assert memo_a is not memo_b
        assert shared_solve_memo(((1.0, 2.0), (0, 1))) is memo_a

    def test_store_is_capped(self):
        for i in range(200):
            shared_solve_memo(((float(i),), (0,)))
        assert solve_memo_entries() <= 64
