"""Tests for the coroutine stepper and Proc wrapper."""

import pytest

from repro.errors import SimulationError
from repro.sim import Proc, step_coroutine, ensure_generator
from repro.sim.process import throw_into


def echo_program():
    a = yield "op1"
    b = yield ("op2", a)
    return a + b


class TestStepCoroutine:
    def test_prime_and_send(self):
        gen = echo_program()
        first = step_coroutine(gen)
        assert not first.done and first.value == "op1"
        second = step_coroutine(gen, 10)
        assert not second.done and second.value == ("op2", 10)
        final = step_coroutine(gen, 32)
        assert final.done and final.value == 42

    def test_return_none(self):
        def prog():
            yield "x"

        gen = prog()
        step_coroutine(gen)
        outcome = step_coroutine(gen, None)
        assert outcome.done and outcome.value is None

    def test_throw_into(self):
        log = []

        def prog():
            try:
                yield "x"
            except ValueError:
                log.append("caught")
                yield "recovered"

        gen = prog()
        step_coroutine(gen)
        outcome = throw_into(gen, ValueError("boom"))
        assert log == ["caught"]
        assert outcome.value == "recovered"

    def test_throw_uncaught_propagates(self):
        def prog():
            yield "x"

        gen = prog()
        step_coroutine(gen)
        with pytest.raises(ValueError):
            throw_into(gen, ValueError("boom"))


class TestEnsureGenerator:
    def test_accepts_generator(self):
        gen = echo_program()
        assert ensure_generator(gen) is gen

    def test_rejects_plain_function(self):
        with pytest.raises(SimulationError) as exc:
            ensure_generator(lambda: None, what="rank 3 program")
        assert "rank 3 program" in str(exc.value)
        assert "yield from" in str(exc.value)

    def test_rejects_list(self):
        with pytest.raises(SimulationError):
            ensure_generator([1, 2, 3])


class TestProc:
    def test_lifecycle(self):
        proc = Proc("rank0", echo_program())
        assert not proc.started and not proc.finished
        out1 = proc.advance()
        assert proc.started and out1.value == "op1"
        out2 = proc.advance(1)
        assert out2.value == ("op2", 1)
        out3 = proc.advance(2)
        assert out3.done and proc.finished and proc.result == 3

    def test_advance_after_finish_raises(self):
        def prog():
            return
            yield  # pragma: no cover

        proc = Proc("p", prog())
        proc.advance()
        with pytest.raises(SimulationError):
            proc.advance()

    def test_repr_states(self):
        proc = Proc("p", echo_program())
        assert "runnable" in repr(proc)
        proc.blocked_on = "recv from 3"
        assert "blocked on recv from 3" in repr(proc)
        proc.advance()
        proc.advance(0)
        proc.advance(0)
        assert "finished" in repr(proc)

    def test_wraps_only_generators(self):
        with pytest.raises(SimulationError):
            Proc("p", 42)
