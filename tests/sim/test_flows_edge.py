"""Edge-case tests for the flow network: batching, caps, registry reuse."""

import math

import pytest

from repro.sim import Engine, FlowNetwork, Resource


class TestDeferredResolve:
    def test_flush_is_idempotent(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 10.0)
        net.add_flow(100.0, [link])
        net.flush()
        net.flush()  # second flush: no pending event, must be a no-op
        eng.run()
        assert net.completed_count == 1

    def test_batched_adds_one_solve(self):
        """Flows added in the same instant resolve together and still
        finish at the exact fair-share times."""
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 100.0)
        done = {}
        for name, size in (("a", 500.0), ("b", 1500.0)):
            net.add_flow(
                size, [link], on_complete=lambda f, n=name: done.setdefault(n, eng.now)
            )
        eng.run()
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(20.0)

    def test_add_at_later_time_accrues_progress_first(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 100.0)
        done = {}
        net.add_flow(1000.0, [link], on_complete=lambda f: done.setdefault("a", eng.now))
        eng.schedule(
            5.0,
            lambda: net.add_flow(
                250.0, [link], on_complete=lambda f: done.setdefault("b", eng.now)
            ),
        )
        eng.run()
        # a: 500B done by t=5; shares 50/50 until b's 250B finish at
        # t=10; a's last 250B then run at full rate: done at t=12.5.
        assert done["b"] == pytest.approx(10.0)
        assert done["a"] == pytest.approx(12.5)


class TestRegistryAndPaths:
    def test_identical_path_tuples_share_id_arrays(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 100.0)
        path = (link,)
        f1 = net.add_flow(10.0, path)
        f2 = net.add_flow(10.0, path)
        assert f1.res_ids is f2.res_ids  # cache hit
        eng.run()

    def test_resources_shared_across_networks(self):
        """A machine reused by two jobs presents the same Resource
        objects to two different FlowNetworks; ids are per-network."""
        link = Resource("l", 100.0)
        for _ in range(2):
            eng = Engine()
            net = FlowNetwork(eng)
            done = {}
            net.add_flow(1000.0, [link], on_complete=lambda f: done.setdefault("x", eng.now))
            eng.run()
            assert done["x"] == pytest.approx(10.0)
        assert link.load == 0  # fully detached after both runs

    def test_duplicate_resource_in_path_counts_twice(self):
        """Listing a resource twice on a path charges it double — the
        idiom for a memcpy's read+write crossing one memory engine."""
        eng = Engine()
        net = FlowNetwork(eng)
        mem = Resource("mem", 100.0)
        done = {}
        net.add_flow(
            500.0, [mem, mem], on_complete=lambda f: done.setdefault("x", eng.now)
        )
        eng.run()
        # Effective rate 50 B/s: 500B in 10s.
        assert done["x"] == pytest.approx(10.0)


class TestCapsAndMixtures:
    def test_capped_and_uncapped_mix(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 100.0)
        fa = net.add_flow(1e4, [link], rate_cap=10.0)
        fb = net.add_flow(1e4, [link])
        net.flush()
        assert fa.rate == pytest.approx(10.0)
        assert fb.rate == pytest.approx(90.0)  # takes the leftovers
        eng.run()

    def test_all_capped_leaves_slack(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("l", 100.0)
        flows = [net.add_flow(1e4, [link], rate_cap=20.0) for _ in range(3)]
        net.flush()
        for f in flows:
            assert f.rate == pytest.approx(20.0)
        assert link.utilization() == pytest.approx(0.6)
        eng.run()

    def test_eta_of_stalled_flow_is_inf(self):
        from repro.sim.flows import Flow

        f = Flow(0, 100.0, (), None, None, None, None, 0.0)
        assert f.eta() == float("inf")
        f.remaining = 0.0
        assert f.eta() == 0.0
