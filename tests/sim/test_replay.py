"""Tests for the vectorized schedule-replay engine (repro.sim.replay)."""

import pytest

from repro.analysis.verify import REGISTRY
from repro.collectives.schedule import extract_schedule
from repro.errors import ReplayUnsupportedError, SimulationError
from repro.machine import Machine, hornet, ideal
from repro.mpi import ANY_SOURCE, Job
from repro.sim.replay import (
    ENGINE_ENV,
    ReplayEngine,
    compile_schedule,
    engine_mode,
)


def registry_compiled(name, nranks, nbytes, root=0):
    sched = extract_schedule(nranks, REGISTRY[name].build(nranks, nbytes, root))
    return compile_schedule(sched)


def counters_dict(c):
    return {
        "messages": c.messages,
        "bytes": c.bytes,
        "intra_messages": c.intra_messages,
        "inter_messages": c.inter_messages,
        "intra_bytes": c.intra_bytes,
        "inter_bytes": c.inter_bytes,
        "sent_by_rank": dict(c.sent_by_rank),
        "received_by_rank": dict(c.received_by_rank),
        "bytes_sent_by_rank": dict(c.bytes_sent_by_rank),
        "bytes_received_by_rank": dict(c.bytes_received_by_rank),
    }


class TestEngineMode:
    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert engine_mode() == "auto"

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "replay")
        assert engine_mode() == "replay"

    def test_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp")
        with pytest.raises(SimulationError, match="warp"):
            engine_mode()


class TestCompile:
    def test_flat_arrays_cover_every_send(self):
        compiled = registry_compiled("bcast_opt", 8, 65536)
        sched = extract_schedule(8, REGISTRY["bcast_opt"].build(8, 65536, 0))
        assert compiled.n_sends == sched.transfers
        assert int(compiled.send_nbytes.sum()) == sched.total_bytes
        assert len(compiled.send_src) == compiled.n_sends

    def test_wildcard_recv_is_unsupported(self):
        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 64)
                elif ctx.rank == 1:
                    yield from ctx.recv(ANY_SOURCE, 64)

            return program()

        sched = extract_schedule(2, factory)
        with pytest.raises(ReplayUnsupportedError, match="ANY_SOURCE"):
            compile_schedule(sched)


class TestReplayEngine:
    # One eager and one rendezvous size per shape: both transport
    # protocols, non-power-of-two and power-of-two rank counts.
    CELLS = [
        ("bcast_opt", 5, 512),
        ("bcast_opt", 8, 262144),
        ("bcast_native", 13, 12288),
        ("bcast_binomial", 16, 4096),
        ("allgather_ring", 6, 65536),
        ("barrier", 7, 0),
    ]

    @pytest.mark.parametrize("name,nranks,nbytes", CELLS)
    def test_bitwise_equal_to_des(self, name, nranks, nbytes):
        compiled = registry_compiled(name, nranks, nbytes)
        des = Job(
            Machine(hornet(), nranks=nranks),
            REGISTRY[name].build(nranks, nbytes, 0),
            working_set=nbytes,
        ).run()
        rep = ReplayEngine(
            Machine(hornet(), nranks=nranks), compiled, working_set=nbytes
        ).run()
        assert rep.time == des.time  # bitwise, no tolerance
        assert list(rep.rank_finish_times) == list(des.rank_finish_times)
        assert counters_dict(rep.counters) == counters_dict(des.counters)
        assert rep.flows_completed == des.flows_completed

    def test_compiled_schedule_is_machine_independent(self):
        # One compiled schedule replays on different specs, matching the
        # DES on each (the protocol split binds at replay time).
        compiled = registry_compiled("bcast_opt", 9, 12288)
        for spec_factory in (hornet, ideal):
            des = Job(
                Machine(spec_factory(), nranks=9),
                REGISTRY["bcast_opt"].build(9, 12288, 0),
                working_set=12288,
            ).run()
            rep = ReplayEngine(
                Machine(spec_factory(), nranks=9), compiled, working_set=12288
            ).run()
            assert rep.time == des.time

    def test_solver_stats_reported(self):
        compiled = registry_compiled("bcast_opt", 8, 65536)
        rep = ReplayEngine(Machine(hornet(), nranks=8), compiled).run()
        stats = rep.solver_stats
        assert stats.mode == "replay"
        assert stats.solves > 0 and stats.flows_solved > 0

    def test_jitter_spec_rejected(self):
        compiled = registry_compiled("bcast_opt", 4, 4096)
        machine = Machine(ideal(jitter_sigma=1e-7), nranks=4)
        with pytest.raises(ReplayUnsupportedError, match="jitter"):
            ReplayEngine(machine, compiled)

    def test_machine_too_small_rejected(self):
        compiled = registry_compiled("bcast_opt", 8, 4096)
        with pytest.raises(SimulationError, match="hosts 4"):
            ReplayEngine(Machine(hornet(), nranks=4), compiled)

    def test_rerun_is_rejected(self):
        # Engine state is single-shot; a second run() must fail loudly
        # rather than return garbage.
        compiled = registry_compiled("bcast_opt", 4, 4096)
        engine = ReplayEngine(Machine(hornet(), nranks=4), compiled)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()
