"""Differential and bookkeeping tests for the incremental fluid solver.

The incremental, component-aware solver must be *bitwise* equivalent to
the from-scratch reference solver (``REPRO_SOLVER=reference``): same
rates after every change, same completion order, same simulated
timestamps. The hypothesis test drives randomized add/cancel/complete
churn through both implementations and compares everything observable;
the unit tests pin down the component tracking and the O(1)
slot/removal bookkeeping directly.
"""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine, FlowNetwork, Resource, SolverStats, solver_mode

CAPACITIES = [100.0, 250.0, 400.0, 150.0, 900.0, 60.0]


def _run_script(script, solver):
    """Execute one churn script on a fresh network; return observables.

    ``script`` is a list of operations, each a tuple:

    * ``("add", delay, nbytes, res_indices, rate_cap)``
    * ``("cancel", delay, flow_ordinal)`` — cancel the n-th added flow
      (modulo adds so far) if it is still active;
    * ``("probe", delay)`` — snapshot every active flow's rate.

    Delays are relative to the previous operation, so the script replays
    identically on both solvers.
    """
    eng = Engine()
    net = FlowNetwork(eng, solver=solver)
    resources = [Resource(f"r{i}", c) for i, c in enumerate(CAPACITIES)]
    added = []
    completions = []
    probes = []
    at = 0.0
    for op in script:
        kind, delay = op[0], op[1]
        at += delay
        if kind == "add":
            _, _, nbytes, res_idx, cap = op

            def do_add(nbytes=nbytes, res_idx=res_idx, cap=cap):
                tag = len(added)
                flow = net.add_flow(
                    nbytes,
                    [resources[i] for i in res_idx],
                    rate_cap=cap,
                    on_complete=lambda f, tag=tag: completions.append(
                        (tag, eng.now)
                    ),
                    meta=tag,
                )
                added.append(flow)

            eng.schedule(at - eng.now if at > eng.now else 0.0, do_add)
        elif kind == "cancel":
            _, _, ordinal = op

            def do_cancel(ordinal=ordinal):
                if added:
                    net.cancel_flow(added[ordinal % len(added)])

            eng.schedule(at - eng.now if at > eng.now else 0.0, do_cancel)
        else:  # probe

            def do_probe():
                net.flush()
                probes.append(
                    tuple(sorted((f.meta, f.rate) for f in net.active))
                )

            eng.schedule(at - eng.now if at > eng.now else 0.0, do_probe)
    eng.run()
    return {
        "completions": completions,
        "probes": probes,
        "final_time": eng.now,
        "completed": net.completed_count,
        "bytes": net.total_bytes_transferred,
    }


_add_op = st.tuples(
    st.just("add"),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    st.lists(
        st.integers(min_value=0, max_value=len(CAPACITIES) - 1),
        min_size=1,
        max_size=4,
    ),
    st.one_of(st.none(), st.floats(min_value=1.0, max_value=500.0)),
)
_cancel_op = st.tuples(
    st.just("cancel"),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.integers(min_value=0, max_value=63),
)
_probe_op = st.tuples(
    st.just("probe"), st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
)


class TestDifferential:
    """Incremental and reference solvers are observably identical."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(_add_op, _cancel_op, _probe_op), max_size=24))
    def test_randomized_churn_is_bitwise_identical(self, script):
        inc = _run_script(script, "incremental")
        ref = _run_script(script, "reference")
        # Same completion order at the same (bitwise) timestamps.
        assert inc["completions"] == ref["completions"]
        # Same rate assignment at every probe point.
        assert inc["probes"] == ref["probes"]
        assert inc["final_time"] == ref["final_time"]
        assert inc["completed"] == ref["completed"]
        assert inc["bytes"] == ref["bytes"]

    def test_bcast_simulation_is_bitwise_identical(self):
        from repro.core import simulate_bcast
        from repro.machine import hornet

        spec = hornet(nodes=4)
        times = {}
        for mode in ("incremental", "reference"):
            # Force the DES: this differential is about its two solver
            # implementations, not the replay engine's data plane.
            os.environ["REPRO_SOLVER"] = mode
            os.environ["REPRO_ENGINE"] = "des"
            try:
                rec = simulate_bcast(
                    spec, 8, 65536, algorithm="scatter_ring_opt"
                )
            finally:
                del os.environ["REPRO_SOLVER"]
                del os.environ["REPRO_ENGINE"]
            times[mode] = rec.time
            assert rec.solver_mode == mode
        assert times["incremental"] == times["reference"]


class TestSolverSelection:
    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "reference")
        assert solver_mode() == "reference"
        assert FlowNetwork(Engine()).solver == "reference"

    def test_default_is_incremental(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert solver_mode() == "incremental"
        assert FlowNetwork(Engine()).solver == "incremental"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "magic")
        with pytest.raises(SimulationError, match="unknown"):
            solver_mode()
        with pytest.raises(SimulationError, match="unknown"):
            FlowNetwork(Engine(), solver="magic")


class TestEmptyPathValidation:
    def test_empty_path_without_cap_raises_at_add_time(self):
        eng = Engine()
        net = FlowNetwork(eng)
        with pytest.raises(
            SimulationError, match="no resources and no rate cap"
        ):
            net.add_flow(100.0, [])

    def test_empty_path_with_cap_completes(self):
        eng = Engine()
        net = FlowNetwork(eng)
        done = {}
        net.add_flow(
            100.0, [], rate_cap=10.0, on_complete=lambda f: done.setdefault("t", eng.now)
        )
        eng.run()
        assert math.isclose(done["t"], 10.0)

    def test_zero_byte_empty_path_still_allowed(self):
        eng = Engine()
        net = FlowNetwork(eng)
        done = {}
        net.add_flow(0.0, [], on_complete=lambda f: done.setdefault("t", eng.now))
        eng.run()
        assert done["t"] == 0.0


class TestComponentTracking:
    def test_disjoint_groups_solved_as_separate_components(self):
        eng = Engine()
        net = FlowNetwork(eng, solver="incremental")
        a = Resource("a", 100.0)
        b = Resource("b", 100.0)
        for res in (a, a, b, b):
            net.add_flow(1000.0, [res])
        net.flush()
        stats = net.stats()
        assert stats.solves == 1
        assert stats.components_solved == 2
        assert stats.max_component == 2

    def test_untouched_component_is_not_resolved(self):
        eng = Engine()
        net = FlowNetwork(eng, solver="incremental")
        a = Resource("a", 100.0)
        b = Resource("b", 100.0)
        f1 = net.add_flow(1000.0, [a])
        f2 = net.add_flow(1000.0, [a])
        net.flush()
        assert net.stats().components_solved == 1
        rate_before = (f1.rate, f2.rate)
        # A new flow on an unrelated resource dirties only its own
        # (singleton) component.
        net.add_flow(1000.0, [b])
        net.flush()
        stats = net.stats()
        assert stats.components_solved == 2
        assert stats.max_component == 2
        assert (f1.rate, f2.rate) == rate_before

    def test_shared_resource_merges_components(self):
        eng = Engine()
        net = FlowNetwork(eng, solver="incremental")
        a = Resource("a", 100.0)
        b = Resource("b", 100.0)
        net.add_flow(1000.0, [a])
        net.add_flow(1000.0, [b])
        net.flush()
        # A bridging flow across both resources joins everything into
        # one three-flow component.
        net.add_flow(1000.0, [a, b])
        net.flush()
        assert net.stats().max_component == 3

    def test_cancel_resolves_only_the_touched_component(self):
        eng = Engine()
        net = FlowNetwork(eng, solver="incremental")
        a = Resource("a", 100.0)
        b = Resource("b", 100.0)
        fa = net.add_flow(1000.0, [a])
        net.add_flow(1000.0, [a])
        fb = net.add_flow(1000.0, [b])
        net.flush()
        base = net.stats().components_solved
        net.cancel_flow(fa)
        net.flush()
        stats = net.stats()
        # Only resource a's component re-solved (one more kernel call),
        # and b's flow kept its rate.
        assert stats.components_solved == base + 1
        assert fb.rate == pytest.approx(100.0)

    def test_stats_are_a_frozen_snapshot(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("link", 100.0)
        net.add_flow(500.0, [link])
        eng.run()
        stats = net.stats()
        assert isinstance(stats, SolverStats)
        assert stats.mode == net.solver
        assert stats.solves >= 1
        assert stats.rounds >= stats.solves
        assert stats.flows_advanced >= 0
        assert stats.solve_time_s >= 0.0
        assert stats.rounds_per_solve == stats.rounds / stats.solves
        assert "solver[" in stats.describe()
        with pytest.raises(AttributeError):
            stats.solves = 0


class TestRemovalBookkeeping:
    def test_completion_releases_slot_and_maps(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("link", 100.0)
        flow = net.add_flow(500.0, [link])
        fid = flow.fid
        assert fid in net._fid_slot
        eng.run()
        assert fid not in net._fid_slot
        assert net.active_count == 0
        assert net._free_slots  # slot recycled, not leaked
        assert link.load == 0
        # Detached flow still reports its terminal state.
        assert flow.remaining == 0.0

    def test_slot_reuse_after_churn(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("link", 100.0)
        for _ in range(50):
            net.add_flow(10.0, [link])
            eng.run()
        # Sequential churn keeps reusing the same slot: the pool never
        # grows beyond the peak concurrency.
        assert len(net._slot_flow) == 1

    def test_cancel_is_o1_and_idempotent(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Resource("link", 100.0)
        flows = [net.add_flow(1000.0, [link]) for _ in range(5)]
        net.flush()
        net.cancel_flow(flows[2])
        assert net.active_count == 4
        net.cancel_flow(flows[2])  # second cancel is a silent no-op
        assert net.active_count == 4
        assert flows[2].fid not in net._fid_slot
        assert link.load == 4

    def test_duplicate_resource_multiplicity_tracked(self):
        eng = Engine()
        net = FlowNetwork(eng)
        mem = Resource("mem", 100.0)
        flow = net.add_flow(1000.0, [mem, mem])
        assert mem.load == 2
        assert mem.flows == [flow, flow]
        net.cancel_flow(flow)
        assert mem.load == 0
        assert mem.flows == []

    def test_detach_unknown_flow_still_raises(self):
        eng = Engine()
        net = FlowNetwork(eng)
        a = Resource("a", 100.0)
        b = Resource("b", 100.0)
        flow = net.add_flow(1000.0, [a])
        with pytest.raises(SimulationError, match="not attached"):
            b.detach(flow)
