"""Tests for the max-min fair fluid-flow network."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine, FlowNetwork, Resource


def make_net():
    eng = Engine()
    return eng, FlowNetwork(eng)


def run_and_collect(eng, net, flows_spec):
    """Start flows at t=0 and return {name: completion_time}."""
    done = {}
    for name, nbytes, resources, cap in flows_spec:
        net.add_flow(
            nbytes,
            resources,
            on_complete=lambda f, n=name: done.setdefault(n, eng.now),
            rate_cap=cap,
        )
    eng.run()
    return done


class TestSingleFlow:
    def test_transfer_time_is_bytes_over_capacity(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = run_and_collect(eng, net, [("f", 1000.0, [link], None)])
        assert math.isclose(done["f"], 10.0)

    def test_zero_byte_flow_completes_at_now(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = run_and_collect(eng, net, [("f", 0.0, [link], None)])
        assert done["f"] == 0.0

    def test_rate_cap_binds_below_capacity(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = run_and_collect(eng, net, [("f", 100.0, [link], 10.0)])
        assert math.isclose(done["f"], 10.0)

    def test_negative_bytes_rejected(self):
        eng, net = make_net()
        with pytest.raises(SimulationError):
            net.add_flow(-1.0, [Resource("r", 1.0)])

    def test_bad_rate_cap_rejected(self):
        eng, net = make_net()
        with pytest.raises(SimulationError):
            net.add_flow(1.0, [Resource("r", 1.0)], rate_cap=0.0)

    def test_resource_requires_positive_capacity(self):
        with pytest.raises(SimulationError):
            Resource("r", 0.0)


class TestFairSharing:
    def test_two_equal_flows_halve_the_link(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = run_and_collect(
            eng,
            net,
            [("a", 1000.0, [link], None), ("b", 1000.0, [link], None)],
        )
        assert math.isclose(done["a"], 20.0)
        assert math.isclose(done["b"], 20.0)

    def test_short_flow_finishes_then_long_speeds_up(self):
        # a:500B and b:1500B share 100B/s. a done at t=10 (rate 50);
        # b then gets the full link: 1000B left / 100 => done at t=20.
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = run_and_collect(
            eng,
            net,
            [("a", 500.0, [link], None), ("b", 1500.0, [link], None)],
        )
        assert math.isclose(done["a"], 10.0)
        assert math.isclose(done["b"], 20.0)

    def test_disjoint_paths_do_not_interact(self):
        eng, net = make_net()
        l1, l2 = Resource("l1", 100.0), Resource("l2", 100.0)
        done = run_and_collect(
            eng,
            net,
            [("a", 1000.0, [l1], None), ("b", 500.0, [l2], None)],
        )
        assert math.isclose(done["a"], 10.0)
        assert math.isclose(done["b"], 5.0)

    def test_maxmin_bottleneck_example(self):
        """Classic: flows {a: L1, b: L1+L2, c: L2}, cap(L1)=100, cap(L2)=40.

        Max-min: b and c bottleneck on L2 at 20 each; a then takes the L1
        leftovers: 80.
        """
        eng, net = make_net()
        l1, l2 = Resource("l1", 100.0), Resource("l2", 40.0)
        net._advance()  # no-op; exercise idempotence
        rates = {}

        def snap(name):
            def cb(flow):
                rates[name] = flow.rate

            return cb

        fa = net.add_flow(8000.0, [l1], meta="a")
        fb = net.add_flow(8000.0, [l1, l2], meta="b")
        fc = net.add_flow(8000.0, [l2], meta="c")
        # Inspect solved rates after adding all three (one batched solve).
        net.flush()
        assert math.isclose(fb.rate, 20.0, rel_tol=1e-6)
        assert math.isclose(fc.rate, 20.0, rel_tol=1e-6)
        assert math.isclose(fa.rate, 80.0, rel_tol=1e-6)
        eng.run()

    def test_no_resource_oversubscribed_while_running(self):
        eng, net = make_net()
        shared = Resource("shared", 60.0)
        other = Resource("other", 100.0)
        flows = [
            net.add_flow(1000.0, [shared]),
            net.add_flow(1000.0, [shared, other]),
            net.add_flow(700.0, [other]),
        ]
        net.flush()
        total_shared = sum(f.rate for f in flows[:2])
        total_other = sum(f.rate for f in flows[1:])
        assert total_shared <= shared.capacity * (1 + 1e-9)
        assert total_other <= other.capacity * (1 + 1e-9)
        # At least one resource is saturated (work conservation).
        assert (
            total_shared >= shared.capacity * (1 - 1e-9)
            or total_other >= other.capacity * (1 - 1e-9)
        )
        eng.run()

    def test_cancel_flow_releases_capacity(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        done = {}
        fa = net.add_flow(1000.0, [link], on_complete=lambda f: done.setdefault("a", eng.now))
        fb = net.add_flow(1000.0, [link], on_complete=lambda f: done.setdefault("b", eng.now))
        eng.schedule(5.0, net.cancel_flow, fb)
        eng.run()
        # a: 5s at 50B/s = 250B, then 750B at 100B/s = 7.5s -> t=12.5.
        assert math.isclose(done["a"], 12.5)
        assert "b" not in done

    def test_cancel_unknown_flow_is_noop(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        f = net.add_flow(10.0, [link])
        eng.run()
        net.cancel_flow(f)  # already finished; must not raise


class TestAccounting:
    def test_counters(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        net.add_flow(100.0, [link])
        net.add_flow(50.0, [link])
        eng.run()
        assert net.completed_count == 2
        assert math.isclose(net.total_bytes_transferred, 150.0)
        assert net.active_count == 0

    def test_flow_meta_passthrough(self):
        eng, net = make_net()
        seen = []
        net.add_flow(
            1.0, [Resource("r", 1.0)], meta=("rank", 3), on_complete=lambda f: seen.append(f.meta)
        )
        eng.run()
        assert seen == [("rank", 3)]

    def test_utilization_reporting(self):
        eng, net = make_net()
        link = Resource("link", 100.0)
        net.add_flow(1000.0, [link])
        net.flush()
        assert math.isclose(link.utilization(), 1.0)
        eng.run()
        assert link.utilization() == 0.0


@settings(deadline=None, max_examples=60)
@given(
    data=st.data(),
    n_resources=st.integers(min_value=1, max_value=5),
    n_flows=st.integers(min_value=1, max_value=12),
)
def test_property_maxmin_invariants(data, n_resources, n_flows):
    """For random topologies: feasibility + at least one tight constraint
    per flow (the max-min optimality certificate)."""
    eng = Engine()
    net = FlowNetwork(eng)
    resources = [
        Resource(f"r{i}", data.draw(st.floats(min_value=1.0, max_value=1000.0)))
        for i in range(n_resources)
    ]
    flows = []
    for i in range(n_flows):
        path_idx = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_resources - 1),
                min_size=1,
                max_size=n_resources,
                unique=True,
            )
        )
        cap = data.draw(
            st.one_of(st.none(), st.floats(min_value=0.5, max_value=500.0))
        )
        flows.append(
            net.add_flow(1e6, [resources[j] for j in path_idx], rate_cap=cap)
        )
    net.flush()

    # Feasibility: no resource above capacity.
    for res in resources:
        assert sum(f.rate for f in res.flows) <= res.capacity * (1 + 1e-6)
    # Positivity and caps.
    for f in flows:
        assert f.rate > 0.0
        if f.rate_cap is not None:
            assert f.rate <= f.rate_cap * (1 + 1e-6)
    # Max-min certificate: every flow is blocked by a saturated resource
    # where it has a maximal rate, or by its own cap.
    for f in flows:
        capped = f.rate_cap is not None and f.rate >= f.rate_cap * (1 - 1e-6)
        bottlenecked = False
        for res in f.resources:
            used = sum(g.rate for g in res.flows)
            if used >= res.capacity * (1 - 1e-6) and f.rate >= max(
                g.rate for g in res.flows
            ) * (1 - 1e-6):
                bottlenecked = True
                break
        assert capped or bottlenecked
