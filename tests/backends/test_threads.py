"""Tests for the real-thread backend (the correctness oracle)."""

import numpy as np
import pytest

from repro.backends import ThreadBackend, run_threaded
from repro.collectives import (
    ALGORITHMS,
    bcast_scatter_ring_opt,
    get_algorithm,
)
from repro.errors import DeadlockError, SimulationError, TruncationError
from repro.mpi import Communicator, RealBuffer


def bcast_factory(algo, nbytes, root):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, root))

        return program()

    return factory


class TestPointToPoint:
    def test_send_recv(self):
        bufs = [RealBuffer(64, fill=4), RealBuffer(64)]

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 64)
                else:
                    status = yield from ctx.recv(0, 64)
                    return status.source

            return program()

        results = run_threaded(2, factory, buffers=bufs)
        assert results[1] == 0
        assert (bufs[1].array == 4).all()

    def test_sendrecv_exchange(self):
        bufs = [RealBuffer(8, fill=1), RealBuffer(8, fill=2)]

        def factory(ctx):
            def program():
                peer = 1 - ctx.rank
                yield from ctx.sendrecv(peer, 8, peer, 8)

            return program()

        run_threaded(2, factory, buffers=bufs)
        assert (bufs[0].array == 2).all()
        assert (bufs[1].array == 1).all()

    def test_recv_cycle_deadlock_detected(self):
        def factory(ctx):
            def program():
                peer = 1 - ctx.rank
                yield from ctx.recv(peer, 4)
                yield from ctx.send(peer, 4)

            return program()

        with pytest.raises(DeadlockError):
            ThreadBackend(2, factory, timeout=0.5).run()

    def test_truncation_surfaces(self):
        bufs = [RealBuffer(16, fill=1), RealBuffer(16)]

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 16)
                else:
                    yield from ctx.recv(0, 4)

            return program()

        with pytest.raises(TruncationError):
            ThreadBackend(2, factory, buffers=bufs, timeout=2.0).run()

    def test_program_exception_propagates(self):
        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    raise ValueError("boom")
                return
                yield

            return program()

        with pytest.raises(ValueError):
            ThreadBackend(2, factory, timeout=2.0).run()

    def test_unknown_op_rejected(self):
        def factory(ctx):
            def program():
                yield object()

            return program()

        with pytest.raises(SimulationError):
            ThreadBackend(1, factory, timeout=2.0).run()

    def test_compute_is_noop_by_default(self):
        def factory(ctx):
            def program():
                yield from ctx.compute(3600.0)
                return "ok"

            return program()

        assert ThreadBackend(1, factory, timeout=5.0).run() == ["ok"]


class TestBroadcastsOnThreads:
    """The same generators that run on the DES run here, byte-identically."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms_deliver(self, name):
        P, nbytes, root = 8, 797, 3
        algo = get_algorithm(name)
        bufs = [RealBuffer(nbytes, fill=(17 if r == root else 0)) for r in range(P)]
        results = run_threaded(P, bcast_factory(algo, nbytes, root), buffers=bufs)
        for rank, buf in enumerate(bufs):
            assert (buf.array == 17).all(), f"{name}: rank {rank}"
        for res in results:
            res.assert_complete()

    def test_npof2_tuned_ring(self):
        P, nbytes = 10, 1000
        bufs = [RealBuffer(nbytes, fill=(17 if r == 0 else 0)) for r in range(P)]
        run_threaded(
            P, bcast_factory(bcast_scatter_ring_opt, nbytes, 0), buffers=bufs
        )
        for buf in bufs:
            assert (buf.array == 17).all()

    def test_matches_schedule_executor_byte_for_byte(self):
        """Thread backend and zero-time executor produce identical final
        buffers from identical programs."""
        from repro.collectives.schedule import extract_schedule

        P, nbytes, root = 9, 500, 2
        payload = np.random.default_rng(0).integers(
            0, 255, size=nbytes, dtype=np.uint8
        )

        def make_bufs():
            bufs = [RealBuffer(nbytes) for _ in range(P)]
            bufs[root].array[:] = payload
            return bufs

        t_bufs = make_bufs()
        run_threaded(
            P, bcast_factory(bcast_scatter_ring_opt, nbytes, root), buffers=t_bufs
        )
        s_bufs = make_bufs()
        extract_schedule(
            P, bcast_factory(bcast_scatter_ring_opt, nbytes, root), buffers=s_bufs
        )
        for tb, sb in zip(t_bufs, s_bufs):
            assert (tb.array == sb.array).all()
            assert (tb.array == payload).all()

    def test_message_count_matches_paper(self):
        backend = ThreadBackend(
            8, bcast_factory(bcast_scatter_ring_opt, 800, 0), timeout=10.0
        )
        backend.run()
        assert backend.message_count == 7 + 44  # scatter + tuned ring

    def test_custom_communicator(self):
        comm = Communicator([3, 1, 2])

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(2, 4)
                elif ctx.rank == 2:
                    status = yield from ctx.recv(0, 4)
                    return status.source
                return None

            return program()

        backend = ThreadBackend(4, factory, comm=comm, timeout=5.0)
        results = backend.run()
        assert results[2] == 0  # localised source
