"""Cross-executor fuzz: random message patterns must behave identically
on the timed DES, the zero-time schedule executor and the real-thread
backend — and random registry collectives must replay bitwise on the
vectorized engine.

The pattern generator builds deadlock-free programs (eager sends first,
then receives) with randomised sizes, tags and peers; each executor runs
the *same* generators. Agreement checked: per-rank received byte totals
and source multisets, and total message counts. The DES-vs-replay fuzz
draws (collective, P, nbytes) cells — non-power-of-two ranks and
non-divisible sizes included — and demands exact equality of makespan,
per-rank finish times and every wire counter.
"""

from collections import Counter

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.backends import ThreadBackend
from repro.collectives.schedule import ScheduleExecutor
from repro.machine import Machine, hornet, ideal
from repro.mpi import ANY_SOURCE, ANY_TAG, Job


def make_pattern(draw, nranks):
    """Random (src, dst, nbytes, tag) list with src != dst."""
    n_msgs = draw(st.integers(min_value=0, max_value=20))
    msgs = []
    for _ in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = draw(st.integers(min_value=0, max_value=nranks - 1))
        if src == dst:
            dst = (dst + 1) % nranks
        nbytes = draw(st.integers(min_value=0, max_value=4096))
        tag = draw(st.integers(min_value=0, max_value=3))
        msgs.append((src, dst, nbytes, tag))
    return msgs


def build_factory(nranks, msgs):
    """Sends first (eager), then wildcard receives: deadlock-free."""
    outgoing = {r: [] for r in range(nranks)}
    incoming_count = Counter()
    for src, dst, nbytes, tag in msgs:
        outgoing[src].append((dst, nbytes, tag))
        incoming_count[dst] += 1

    def factory(ctx):
        def program():
            received = []
            for dst, nbytes, tag in outgoing[ctx.rank]:
                yield from ctx.send(dst, nbytes, tag=tag)
            for _ in range(incoming_count[ctx.rank]):
                status = yield from ctx.recv(ANY_SOURCE, 4096, tag=ANY_TAG)
                received.append((status.source, status.nbytes))
            return sorted(received)

        return program()

    return factory


def expected_receipts(nranks, msgs):
    out = {r: [] for r in range(nranks)}
    for src, dst, nbytes, _tag in msgs:
        out[dst].append((src, nbytes))
    return {r: sorted(v) for r, v in out.items()}


@settings(deadline=None, max_examples=40)
@given(data=st.data())
def test_three_executors_agree(data):
    nranks = data.draw(st.integers(min_value=2, max_value=6))
    msgs = make_pattern(data.draw, nranks)
    expected = expected_receipts(nranks, msgs)

    # 1. Zero-time schedule executor.
    sched = ScheduleExecutor(nranks, build_factory(nranks, msgs)).run()
    assert {r: sched.rank_results[r] for r in range(nranks)} == expected
    assert sched.transfers == len(msgs)

    # 2. Timed DES (eager threshold above every size: no rendezvous
    # deadlock for the sends-first pattern).
    machine = Machine(ideal(eager_threshold=8192), nranks=nranks)
    des = Job(machine, build_factory(nranks, msgs)).run()
    assert {r: des.rank_results[r] for r in range(nranks)} == expected
    assert des.counters.messages == len(msgs)

    # 3. Real threads.
    backend = ThreadBackend(nranks, build_factory(nranks, msgs), timeout=30.0)
    results = backend.run()
    assert {r: results[r] for r in range(nranks)} == expected
    assert backend.message_count == len(msgs)


# Non-divisible and boundary sizes: remainder chunks in the scatter
# phases, eager/rendezvous threshold crossings (hornet threshold: 8192),
# zero-padding edge cases. All chosen to not divide typical P.
FUZZ_SIZES = (1, 37, 511, 4097, 8192, 8193, 12288, 65537)


@settings(deadline=None, max_examples=30)
@given(data=st.data())
def test_des_and_replay_engines_agree(data):
    """Random (collective, P, nbytes): replay must match the DES bitwise."""
    from repro.analysis.replaygate import _counters_dict
    from repro.analysis.verify import REGISTRY
    from repro.collectives.schedule import extract_schedule
    from repro.errors import ReplayUnsupportedError
    from repro.sim.replay import ReplayEngine, compile_schedule

    name = data.draw(st.sampled_from(sorted(REGISTRY)))
    nranks = data.draw(st.integers(min_value=2, max_value=17))
    collective = REGISTRY[name]
    assume(collective.supports(nranks))
    nbytes = data.draw(st.sampled_from(FUZZ_SIZES))
    spec_factory = data.draw(st.sampled_from([ideal, hornet]))

    schedule = extract_schedule(nranks, collective.build(nranks, nbytes, 0))
    try:
        compiled = compile_schedule(schedule)
    except ReplayUnsupportedError:
        # A legitimate fallback cell (wildcard receives etc.), not a bug.
        assume(False)

    des = Job(
        Machine(spec_factory(), nranks=nranks),
        collective.build(nranks, nbytes, 0),
        working_set=nbytes,
    ).run()
    rep = ReplayEngine(
        Machine(spec_factory(), nranks=nranks), compiled, working_set=nbytes
    ).run()

    assert rep.time == des.time
    assert list(rep.rank_finish_times) == list(des.rank_finish_times)
    assert _counters_dict(rep.counters) == _counters_dict(des.counters)
    assert rep.flows_completed == des.flows_completed
