"""Cross-executor fuzz: random message patterns must behave identically
on the timed DES, the zero-time schedule executor and the real-thread
backend.

The pattern generator builds deadlock-free programs (eager sends first,
then receives) with randomised sizes, tags and peers; each executor runs
the *same* generators. Agreement checked: per-rank received byte totals
and source multisets, and total message counts.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import ThreadBackend
from repro.collectives.schedule import ScheduleExecutor
from repro.machine import Machine, ideal
from repro.mpi import ANY_SOURCE, ANY_TAG, Job


def make_pattern(draw, nranks):
    """Random (src, dst, nbytes, tag) list with src != dst."""
    n_msgs = draw(st.integers(min_value=0, max_value=20))
    msgs = []
    for _ in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = draw(st.integers(min_value=0, max_value=nranks - 1))
        if src == dst:
            dst = (dst + 1) % nranks
        nbytes = draw(st.integers(min_value=0, max_value=4096))
        tag = draw(st.integers(min_value=0, max_value=3))
        msgs.append((src, dst, nbytes, tag))
    return msgs


def build_factory(nranks, msgs):
    """Sends first (eager), then wildcard receives: deadlock-free."""
    outgoing = {r: [] for r in range(nranks)}
    incoming_count = Counter()
    for src, dst, nbytes, tag in msgs:
        outgoing[src].append((dst, nbytes, tag))
        incoming_count[dst] += 1

    def factory(ctx):
        def program():
            received = []
            for dst, nbytes, tag in outgoing[ctx.rank]:
                yield from ctx.send(dst, nbytes, tag=tag)
            for _ in range(incoming_count[ctx.rank]):
                status = yield from ctx.recv(ANY_SOURCE, 4096, tag=ANY_TAG)
                received.append((status.source, status.nbytes))
            return sorted(received)

        return program()

    return factory


def expected_receipts(nranks, msgs):
    out = {r: [] for r in range(nranks)}
    for src, dst, nbytes, _tag in msgs:
        out[dst].append((src, nbytes))
    return {r: sorted(v) for r, v in out.items()}


@settings(deadline=None, max_examples=40)
@given(data=st.data())
def test_three_executors_agree(data):
    nranks = data.draw(st.integers(min_value=2, max_value=6))
    msgs = make_pattern(data.draw, nranks)
    expected = expected_receipts(nranks, msgs)

    # 1. Zero-time schedule executor.
    sched = ScheduleExecutor(nranks, build_factory(nranks, msgs)).run()
    assert {r: sched.rank_results[r] for r in range(nranks)} == expected
    assert sched.transfers == len(msgs)

    # 2. Timed DES (eager threshold above every size: no rendezvous
    # deadlock for the sends-first pattern).
    machine = Machine(ideal(eager_threshold=8192), nranks=nranks)
    des = Job(machine, build_factory(nranks, msgs)).run()
    assert {r: des.rank_results[r] for r in range(nranks)} == expected
    assert des.counters.messages == len(msgs)

    # 3. Real threads.
    backend = ThreadBackend(nranks, build_factory(nranks, msgs), timeout=30.0)
    results = backend.run()
    assert {r: results[r] for r in range(nranks)} == expected
    assert backend.message_count == len(msgs)
