"""Suite-wide fixtures.

The sweep harness persists results under ``~/.cache/repro`` by default;
tests must never read or pollute the developer's real cache, so every
test gets a throwaway cache directory unless it overrides the variable
itself.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
