"""Chaos property fuzz: random seeded fault plans must never corrupt data.

For any registry collective at P in [2, 12] and any uniform fault plan
with drop probability < 1, a run on the reliable transport either
delivers bit-identical payloads at every rank (checked against a
fault-free reference) or raises a typed
:class:`~repro.errors.TransportExhaustedError` — and whichever of the
two happens is a deterministic function of the seed.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.chaos import run_chaos_point
from repro.analysis.verify import REGISTRY
from repro.sim import FaultPlan

NAMES = sorted(REGISTRY)


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_random_plans_deliver_or_fail_typed(data):
    nranks = data.draw(st.integers(min_value=2, max_value=12))
    supported = [n for n in NAMES if REGISTRY[n].supports(nranks)]
    name = data.draw(st.sampled_from(supported))
    plan = FaultPlan.uniform(
        seed=data.draw(st.integers(min_value=0, max_value=2**31)),
        drop_p=data.draw(
            st.floats(min_value=0.0, max_value=0.6, allow_nan=False)
        ),
        dup_p=data.draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False)),
        corrupt_p=data.draw(
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False)
        ),
        name="fuzz",
    )
    nbytes = data.draw(st.sampled_from([256, 1024, 4096]))

    check = run_chaos_point(name, nranks, plan, nbytes=nbytes)
    # run_chaos_point already fails a run that corrupts payloads, diverges
    # on the wire with zero retransmissions, deadlocks, or exhausts under
    # a lossless plan — any of those is a property violation here.
    assert check.status in ("ok", "exhausted"), check.detail

    # Determinism: the same seed must reproduce the same verdict and the
    # same telemetry, event for event.
    again = run_chaos_point(name, nranks, plan, nbytes=nbytes)
    assert again == check
