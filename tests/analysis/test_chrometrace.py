"""Tests for the Chrome trace-event exporter."""

import io
import json

import pytest

from repro.analysis import to_chrome_trace, write_chrome_trace
from repro.errors import ConfigurationError
from repro.sim import Trace

from .test_timeline import traced_bcast


class TestToChrome:
    def test_schema(self):
        payload = to_chrome_trace(traced_bcast(P=4))
        assert "traceEvents" in payload
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"  # process metadata first
        xs = [e for e in events if e["ph"] == "X"]
        assert xs, "no complete events"
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] > 0
            assert "nbytes" in e["args"]
            assert e["cat"] in ("scatter", "ring")

    def test_event_count_matches_transfers(self):
        payload = to_chrome_trace(traced_bcast(P=8))
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 51  # 7 scatter + 44 tuned ring

    def test_thread_metadata_per_rank(self):
        payload = to_chrome_trace(traced_bcast(P=4))
        tids = {
            e["tid"]
            for e in payload["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert tids == {0, 1, 2, 3}

    def test_timestamps_in_microseconds(self):
        trace = Trace()
        trace.emit(1.0, "send_launch", src=0, dst=1, tag=0, nbytes=4)
        trace.emit(2.0, "recv_complete", src=0, dst=1, tag=0, nbytes=4)
        payload = to_chrome_trace(trace)
        (x,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert x["ts"] == pytest.approx(1e6)
        assert x["dur"] == pytest.approx(1e6)


class TestWrite:
    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_bcast(P=4), str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_write_to_fileobj(self):
        buf = io.StringIO()
        write_chrome_trace(traced_bcast(P=4), buf, process_name="demo")
        loaded = json.loads(buf.getvalue())
        names = [e["args"].get("name") for e in loaded["traceEvents"] if e["ph"] == "M"]
        assert "demo" in names

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            write_chrome_trace(Trace(), 42)
