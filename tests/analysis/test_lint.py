"""Tests for the determinism lint (repro.analysis.lint)."""

import textwrap

from repro.analysis.lint import (
    default_target_paths,
    lint_paths,
    lint_source,
    main as lint_main,
)


def lint(code):
    return lint_source(textwrap.dedent(code), "snippet.py")


class TestWallClock:
    def test_time_time_flagged(self):
        violations = lint(
            """
            import time
            t = time.time()
            """
        )
        assert [v.rule for v in violations] == ["wall-clock"]
        assert "time.time" in violations[0].message

    def test_aliased_import_seen_through(self):
        violations = lint(
            """
            from time import perf_counter as tick
            x = tick()
            """
        )
        assert [v.rule for v in violations] == ["wall-clock"]

    def test_module_alias_seen_through(self):
        violations = lint(
            """
            import time as t
            x = t.monotonic()
            """
        )
        assert [v.rule for v in violations] == ["wall-clock"]

    def test_datetime_now_flagged(self):
        violations = lint(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        )
        assert [v.rule for v in violations] == ["wall-clock"]

    def test_simulated_time_not_flagged(self):
        violations = lint(
            """
            def step(env):
                now = env.now
                return now + 1.5
            """
        )
        assert violations == []


class TestRandomness:
    def test_global_random_flagged(self):
        violations = lint(
            """
            import random
            x = random.random()
            random.shuffle([1, 2, 3])
            """
        )
        assert [v.rule for v in violations] == ["global-random", "global-random"]

    def test_seeded_random_instance_allowed(self):
        violations = lint(
            """
            import random
            rng = random.Random(1234)
            x = rng.random()
            """
        )
        assert violations == []

    def test_legacy_numpy_random_flagged(self):
        violations = lint(
            """
            import numpy as np
            x = np.random.rand(4)
            """
        )
        assert [v.rule for v in violations] == ["global-random"]
        assert "default_rng" in violations[0].message

    def test_unseeded_default_rng_flagged(self):
        violations = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert [v.rule for v in violations] == ["unseeded-rng"]

    def test_seeded_default_rng_allowed(self):
        violations = lint(
            """
            import numpy as np
            a = np.random.default_rng(7)
            b = np.random.default_rng(seed=7)
            s = np.random.SeedSequence(42)
            """
        )
        assert violations == []


class TestEscapes:
    def test_allow_marker_suppresses(self):
        violations = lint(
            """
            import time
            start = time.perf_counter()  # det: allow
            bad = time.perf_counter()
            """
        )
        assert len(violations) == 1 and violations[0].line == 4

    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n", "broken.py")
        assert [v.rule for v in violations] == ["syntax"]

    def test_violation_str_has_location(self):
        (v,) = lint("import time\nx = time.time()\n")
        assert str(v).startswith("snippet.py:2:")


class TestTree:
    def test_simulation_core_is_clean(self):
        assert lint_paths(default_target_paths()) == []

    def test_default_targets_cover_fault_and_arq_modules(self):
        # The chaos gate depends on sim/faults.py and mpi/reliable.py
        # staying deterministic; the package-level targets must keep
        # sweeping them up.
        covered = set()
        for root in default_target_paths():
            covered.update(p.name for p in root.rglob("*.py"))
        assert {"faults.py", "reliable.py"} <= covered

    def test_default_target_list_is_pinned(self):
        # Regression pin: dropping a package from the lint targets would
        # silently stop enforcing determinism there. Extend deliberately,
        # never shrink.
        from repro.analysis.lint import DEFAULT_TARGETS

        assert DEFAULT_TARGETS == (
            "sim",
            "collectives",
            "mpi",
            "machine",
            "analysis",
            "service",
            "core",
            "bench",
        )

    def test_default_targets_cover_bench_stopwatch(self):
        # bench/micro.py's perf_counter stopwatch must stay under the
        # sweep with explicit `# det: allow` escapes, and core/ (traffic
        # accounting, sweep drivers, disk cache) must lint clean.
        covered = set()
        for root in default_target_paths():
            covered.update(p.name for p in root.rglob("*.py"))
        assert {"micro.py", "traffic.py"} <= covered
        assert lint_paths(default_target_paths()) == []

    def test_service_server_loop_is_covered_and_clean(self):
        # The server's host-clock uses must stay visible as explicit
        # `# det: allow` telemetry escapes, not lint blind spots.
        covered = set()
        for root in default_target_paths():
            covered.update(p.name for p in root.rglob("*.py"))
        assert "server.py" in covered
        assert lint_paths(default_target_paths()) == []

    def test_default_targets_cover_replay_engine(self):
        # The replay engine substitutes for the DES in sweeps and the
        # disk cache, so its determinism matters as much as the
        # simulation core's; it must stay under the lint's sweep and
        # lint clean (its perf_counter telemetry carries explicit
        # `det: allow` markers, like sim/flows.py).
        covered = set()
        replay = None
        for root in default_target_paths():
            for p in root.rglob("*.py"):
                covered.add(p.name)
                if p.name == "replay.py" and p.parent.name == "sim":
                    replay = p
        assert "replay.py" in covered and replay is not None
        assert lint_paths([replay]) == []

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import time\ny = time.time()\n")
        violations = lint_paths([tmp_path])
        assert len(violations) == 1 and violations[0].path.endswith("bad.py")


class TestMain:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert lint_main([str(f)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        f = tmp_path / "dirty.py"
        f.write_text("import random\nx = random.randint(0, 9)\n")
        assert lint_main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "global-random" in out and "1 violation(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_default_targets_currently_clean(self, capsys):
        assert lint_main([]) == 0
