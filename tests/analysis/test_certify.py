"""Tests for the certificate checker (repro.analysis.certify).

The headline claims — tuned-ring savings exactly S-P for every P,
zero redundancy, the paper's 12@P=8 / 15@P=10 pins — must hold as
checked proofs, the completeness rule must leave no registry entry
silently unproved, and a tampered certificate must FAIL (a checker
that cannot reject is not checking anything).
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.analysis.certify import (
    crossvalidate_certificate,
    crossvalidate_roles,
    predicted_redundant_exact,
    predicted_role,
    prove_all,
    prove_collective,
)
from repro.analysis.symbolic import (
    ring_transfers_tuned,
    savings,
    subtree_chunks,
    subtree_sum,
)
from repro.analysis.verify import REGISTRY
from repro.collectives.certificates import CERTIFICATES, UNCERTIFIED
from repro.errors import ConfigurationError


class TestSymbolicProofs:
    @pytest.fixture(scope="class")
    def opt_report(self):
        return prove_collective("bcast_opt", skip_crossval=True)

    def test_bcast_opt_all_obligations_hold(self, opt_report):
        assert opt_report.failed_obligations == []
        assert opt_report.ok

    def test_bcast_opt_proves_not_just_asserts(self, opt_report):
        # The bulk of the certificate must be symbolically proved;
        # structural obligations (induction/counting glue) are the
        # minority and each one is concretely cross-validated.
        proved = [o for o in opt_report.obligations if o.status == "proved"]
        structural = [
            o for o in opt_report.obligations if o.status == "structural"
        ]
        assert len(proved) > 3 * len(structural)

    def test_paper_corollaries_pinned(self, opt_report):
        assert opt_report.corollaries["savings"] == "S - P"
        assert opt_report.corollaries["savings_P8"] == 12
        assert opt_report.corollaries["savings_P10"] == 15
        assert opt_report.corollaries["redundant"] == "0"

    def test_native_certificate_has_redundancy_corollary(self):
        report = prove_collective("bcast_native", skip_crossval=True)
        assert report.ok
        assert report.corollaries["redundant"] == "S - P"
        assert report.corollaries["ring_transfers"] == "P*(P-1)"

    def test_unknown_collective_is_config_error(self):
        with pytest.raises(ConfigurationError):
            prove_collective("no_such_collective", skip_crossval=True)

    def test_bad_range_is_config_error(self):
        with pytest.raises(ConfigurationError):
            prove_collective("bcast_opt", xval_lo=1, xval_hi=0)


class TestCompleteness:
    def test_every_registry_entry_certified_or_waived(self):
        covered = set(CERTIFICATES) | set(UNCERTIFIED)
        assert set(REGISTRY) <= covered

    def test_no_double_coverage(self):
        assert not (set(CERTIFICATES) & set(UNCERTIFIED))

    def test_waivers_give_reasons(self):
        for name, reason in UNCERTIFIED.items():
            assert len(reason) > 20, f"waiver for {name} needs a real reason"

    def test_prove_all_green(self):
        # Narrow range to keep the suite fast; CI runs the full [2, 64]
        # sweep via `repro prove --all --strict`.
        report = prove_all(xval_lo=2, xval_hi=12)
        assert report.ok, report.describe()
        assert report.ok_strict()
        assert report.uncovered == []
        assert report.stale_waivers == []
        assert report.role_failures == []
        assert {r.collective for r in report.reports} == set(CERTIFICATES)

    def test_skipped_crossval_fails_strict(self):
        report = prove_all(skip_crossval=True)
        assert report.ok
        assert not report.ok_strict()


class TestTamperedCertificateFails:
    def test_wrong_paper_pin_is_rejected(self, monkeypatch):
        import repro.analysis.certify as certify

        monkeypatch.setattr(
            certify, "PAPER_CASES", {8: (13, 56, 43), 10: (15, 90, 75)}
        )
        report = prove_collective("bcast_opt", skip_crossval=True)
        assert not report.ok
        assert any(
            o.oid.endswith("count.paper_P8") for o in report.failed_obligations
        )


class TestConcretePredictions:
    def test_roles_match_executable_derivation(self):
        assert crossvalidate_roles(2, 40) == []

    def test_role_send_counts_sum_to_tuned_total(self):
        # The role lemma's per-rank send counts must reproduce the
        # closed form P*(P-1) - (S-P) when summed — independently of
        # any schedule execution.
        for P in range(2, 48):
            total = sum(
                predicted_role(rel, P)[3] for rel in range(P)
            )
            assert total == ring_transfers_tuned(P)
            assert P * (P - 1) - total == savings(P)

    def test_role_extents_are_subtree_chunks(self):
        for P in (2, 5, 8, 16, 33):
            for rel in range(P):
                assert predicted_role(rel, P)[1] == subtree_chunks(rel, P)
            assert sum(predicted_role(r, P)[1] for r in range(P)) == (
                subtree_sum(P)
            )

    def test_native_redundancy_prediction(self):
        # S - P chunk-bearing redundant deliveries at exact divisibility.
        for P in (4, 8, 10):
            assert predicted_redundant_exact(P, P * 1024) == (
                subtree_sum(P) - P
            )


NAMES = sorted(CERTIFICATES)


class TestCrossValidationProperty:
    """Satellite property: certificate-predicted ownership equals the
    concrete verifier's provenance ownership at every step — for
    arbitrary P, non-divisible message sizes and degenerate roots."""

    @given(
        name=st.sampled_from(NAMES),
        nranks=st.integers(min_value=2, max_value=64),
        nbytes=st.one_of(
            st.sampled_from([1, 7, 1000, 65536, 65537]),
            st.integers(min_value=1, max_value=1 << 18),
        ),
        root_kind=st.sampled_from(["zero", "one", "last", "mid"]),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @example(name="bcast_opt", nranks=8, nbytes=65536, root_kind="zero")
    @example(name="bcast_opt", nranks=10, nbytes=1000, root_kind="last")
    @example(name="bcast_native", nranks=8, nbytes=7, root_kind="mid")
    @example(name="bcast_opt", nranks=2, nbytes=1, root_kind="one")
    @example(name="scatter", nranks=13, nbytes=65537, root_kind="last")
    @example(name="allgather_ring", nranks=6, nbytes=1000, root_kind="zero")
    def test_predictions_match_provenance(
        self, name, nranks, nbytes, root_kind
    ):
        root = {
            "zero": 0,
            "one": 1 % nranks,
            "last": nranks - 1,
            "mid": nranks // 2,
        }[root_kind]
        assert crossvalidate_certificate(name, nranks, nbytes, root) == []
