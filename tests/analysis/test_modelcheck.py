"""Tests for the match-order model checker (repro.analysis.modelcheck)."""

import numpy as np
import pytest

from repro.analysis.modelcheck import (
    DEFAULT_RANKS,
    buffer_digests,
    check_collective,
    check_program,
    default_mc_plans,
    mc_grid,
)
from repro.analysis.verify import REGISTRY
from repro.errors import ConfigurationError, DeadlockError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer
from repro.mpi.ops import ANY_SOURCE


def _deadlock_factory():
    """Deliberately broken wildcard schedule (the seeded fixture).

    Rank 0 posts ``recv(ANY_SOURCE)`` then ``recv(src=1)`` while ranks 1
    and 2 each send once with the same tag. The interleaving where rank
    1's send matches the wildcard leaves ``recv(src=1)`` waiting forever
    and rank 2's message stuck in the unexpected queue.
    """

    def factory(ctx):
        def program():
            if ctx.rank == 0:
                yield from ctx.recv(ANY_SOURCE, 4, tag=7)
                yield from ctx.recv(1, 4, tag=7)
            else:
                yield from ctx.send(0, 4, tag=7)

        return program()

    return factory


def _wildcard_race_factory(nsenders, tag=7):
    """Deadlock-free wildcard race: rank 0 drains ``nsenders`` wildcard
    receives into distinct displacements; each sender's payload differs,
    so distinct match orders produce distinct final buffers."""

    def factory(ctx):
        def program():
            if ctx.rank == 0:
                for i in range(nsenders):
                    yield from ctx.recv(ANY_SOURCE, 4, disp=4 * i, tag=tag)
            else:
                yield from ctx.send(0, 4, tag=tag)

        return program()

    return factory


def _race_buffers(nranks):
    return [
        RealBuffer.from_array(np.arange(16, dtype=np.uint8) + 50 * r)
        for r in range(nranks)
    ]


class TestRegistryDpor:
    def test_bcast_opt_is_wildcard_free_single_interleaving(self):
        report = check_collective("bcast_opt", 6)
        assert report.ok and report.complete
        assert report.executions == 1
        assert report.terminals == 1
        assert report.outcomes == {"done": 1}
        assert report.payload_digest is not None
        assert report.wire is not None and report.wire["messages"] > 0

    def test_payload_digest_matches_des_reference(self):
        from repro.analysis.chaos import _make_buffers

        for name, nranks in [("bcast_opt", 5), ("allgather_ring", 4)]:
            report = check_collective(name, nranks, nbytes=1024)
            assert report.ok, report.describe()
            machine = Machine(ideal(), nranks)
            bufs = _make_buffers(name, nranks, 1024)
            Job(
                machine,
                REGISTRY[name].build(nranks, 1024, 0),
                buffers=bufs,
            ).run()
            assert report.payload_digest == buffer_digests(bufs)

    def test_dpor_explores_10x_fewer_states_than_naive_on_tuned_ring_p6(self):
        # The acceptance bar: naive enumeration capped at 10x the DPOR
        # state count must fail to finish the tuned ring at P=6.
        dpor = check_collective("bcast_opt", 6)
        assert dpor.complete and dpor.ok
        naive = check_collective(
            "bcast_opt", 6, mode="naive", max_states=10 * dpor.states
        )
        assert not naive.complete

    def test_unsupported_rank_count_raises(self):
        with pytest.raises(ConfigurationError):
            check_collective("bcast_rdbl", 6)  # pof2-only

    def test_unknown_collective_raises(self):
        with pytest.raises(ConfigurationError):
            check_collective("nope", 4)

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigurationError):
            check_collective("bcast_opt", 4, mode="bogus")


class TestDeadlockWitness:
    def test_deadlock_found_with_minimized_witness(self):
        report = check_program(3, _deadlock_factory, name="deadlock-fixture")
        assert not report.ok
        assert [v.kind for v in report.violations] == ["deadlock"]
        w = report.witness
        assert w is not None and w.minimized
        # The minimal trigger is exactly: rank 1 sends (matches the
        # wildcard), rank 0 runs to the starved recv(src=1), rank 1
        # finishes, rank 2 sends + finishes. Nothing is removable.
        assert len(w.schedule) == 5
        assert all(r in (0, 1, 2) for r in w.schedule)
        assert len(w.steps) == len(w.schedule)
        assert any("blocked in recv(src=1" in b for b in w.blocked)

    def test_witness_survives_json_round_trip(self):
        import json

        report = check_program(3, _deadlock_factory, name="deadlock-fixture")
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["witness"]["minimized"] is True
        assert data["witness"]["schedule"] == list(report.witness.schedule)

    def test_deadlock_error_carries_witness(self):
        report = check_program(3, _deadlock_factory, name="deadlock-fixture")
        err = report.deadlock_error()
        assert isinstance(err, DeadlockError)
        assert err.witness is report.witness
        assert "deadlock witness" in str(err)

    def test_no_deadlock_no_error(self):
        report = check_collective("bcast_opt", 4)
        assert report.deadlock_error() is None


class TestDeadlockErrorDedupe:
    def test_repeated_blocked_lines_collapse_with_multiplicity(self):
        lines = ["rank blocked in recv(src=0, tag=1, nbytes=4)"] * 6 + ["idle"]
        err = DeadlockError(lines)
        msg = str(err)
        assert msg.count("rank blocked in recv") == 1
        assert "(x6)" in msg
        assert len(err.blocked) == 7  # full list preserved

    def test_distinct_lines_unchanged(self):
        err = DeadlockError(["a", "b"])
        assert "a; b" in str(err)
        assert "(x" not in str(err)

    def test_witness_rendered_into_message(self):
        report = check_program(3, _deadlock_factory, name="fixture")
        err = DeadlockError(["rank 0 stuck"], witness=report.witness)
        assert "deadlock witness" in str(err)
        assert "step 0" in str(err)


class TestWildcardRaces:
    def test_dpor_flags_payload_nondeterminism(self):
        report = check_program(
            3,
            lambda: _wildcard_race_factory(2),
            make_buffers=lambda: _race_buffers(3),
            name="race",
        )
        assert not report.ok
        assert {v.kind for v in report.violations} == {"nondeterminism"}
        assert "final payloads" in report.violations[0].detail
        assert report.executions == 2
        assert report.terminals == 2

    def test_dpor_and_naive_agree_and_dpor_is_smaller(self):
        dpor = check_program(
            3,
            lambda: _wildcard_race_factory(2),
            make_buffers=lambda: _race_buffers(3),
            name="race",
            mode="dpor",
        )
        naive = check_program(
            3,
            lambda: _wildcard_race_factory(2),
            make_buffers=lambda: _race_buffers(3),
            name="race",
            mode="naive",
        )
        assert dpor.terminals == naive.terminals
        assert dpor.outcomes == naive.outcomes
        assert {v.kind for v in dpor.violations} == {
            v.kind for v in naive.violations
        }
        assert dpor.states < naive.states

    def test_same_payload_races_are_benign(self):
        # Two senders racing *identical* bytes into the wildcard: the
        # interleavings differ but every terminal state is bit-identical.
        def make_buffers():
            return [
                RealBuffer.from_array(np.full(16, 9, dtype=np.uint8))
                for _ in range(3)
            ]

        report = check_program(
            3,
            lambda: _wildcard_race_factory(2),
            make_buffers=make_buffers,
            name="benign-race",
        )
        assert report.ok, report.describe()
        assert report.executions == 2
        assert report.terminals == 1


class TestFaultExploration:
    def test_crash_plan_yields_typed_exhaustion(self):
        plan = default_mc_plans()[4]
        assert plan.name == "crash"
        report = check_collective("bcast_opt", 4, faults=plan)
        assert report.ok, report.describe()
        assert any(k.startswith("exhausted") for k in report.outcomes)

    def test_window_plan_retransmits_through_the_loss_window(self):
        plan = default_mc_plans()[3]
        assert plan.name == "window"
        report = check_collective("bcast_opt", 4, faults=plan)
        assert report.ok, report.describe()
        assert report.outcomes == {"done": 1}
        assert report.injected["drop"] > 0  # the window actually fired

    def test_all_default_plans_deliver_or_exhaust_typed(self):
        for plan in default_mc_plans():
            for name in ("bcast_native", "bcast_opt"):
                report = check_collective(name, 4, faults=plan)
                assert report.ok, report.describe()
                assert all(
                    k == "done" or k.startswith("exhausted")
                    for k in report.outcomes
                )

    def test_fault_decisions_are_interleaving_invariant(self):
        # Per-link attempt indices are program-order determined, so a
        # seeded plan must injure every interleaving identically: the
        # wildcard race stays a pure payload race under faults too.
        from repro.sim.faults import FaultPlan

        plan = FaultPlan.uniform(seed=3, dup_p=0.5, name="dup")
        report = check_program(
            3,
            lambda: _wildcard_race_factory(2),
            make_buffers=lambda: _race_buffers(3),
            name="race-faulty",
            faults=plan,
            mode="naive",
        )
        assert {v.kind for v in report.violations} <= {"nondeterminism"}
        assert "wire counters" not in "".join(
            v.detail for v in report.violations
        )


class TestGridGate:
    # One shared grid run: the budget assertions below pin the DPOR
    # regression surface (states ballooning or branches appearing).
    STATE_BUDGET = 4000  # ~2.3k today; fails loudly if DPOR regresses

    @pytest.fixture(scope="class")
    def grid(self):
        return mc_grid()

    def test_grid_is_clean(self, grid):
        assert grid.ok, grid.describe()

    def test_fault_free_registry_is_single_execution(self, grid):
        # No registry collective posts ANY_SOURCE: DPOR must cover each
        # fault-free point with exactly one interleaving.
        for c in grid.checks:
            if c.plan == "-":
                assert c.executions == 1, f"{c.collective} P={c.nranks}"

    def test_state_count_budget(self, grid):
        assert grid.total_states <= self.STATE_BUDGET, (
            f"mc grid explored {grid.total_states} states "
            f"(budget {self.STATE_BUDGET}); a DPOR regression?"
        )

    def test_grid_covers_registry_at_small_p(self, grid):
        seen = {(c.collective, c.nranks) for c in grid.checks if c.plan == "-"}
        for nranks in DEFAULT_RANKS:
            for name in REGISTRY:
                if REGISTRY[name].supports(nranks):
                    assert (name, nranks) in seen

    def test_rings_reach_p8(self, grid):
        seen = {(c.collective, c.nranks) for c in grid.checks if c.plan == "-"}
        assert ("bcast_native", 8) in seen and ("bcast_opt", 8) in seen

    def test_grid_json_shape(self, grid):
        data = grid.to_dict()
        assert data["ok"] is True
        assert data["total_states"] == grid.total_states
        assert len(data["checks"]) == len(grid.checks)


class TestVerifyFeedback:
    def test_hazards_downgraded_to_benign(self):
        from repro.analysis.verify import verify_collective

        report = verify_collective("bcast_opt", 6, nbytes=4096, modelcheck=True)
        assert report.hazards, "expected hazard pairs on the tuned ring"
        assert all(h.verdict == "benign" for h in report.hazards)
        assert report.ok_strict()
        assert report.modelcheck is not None and report.modelcheck["ok"]

    def test_unchecked_hazards_still_fail_strict(self):
        from repro.analysis.verify import verify_collective

        report = verify_collective("bcast_opt", 6, nbytes=4096)
        assert report.hazards
        assert all(h.verdict is None for h in report.hazards)
        assert not report.ok_strict()
