"""One exit-code convention across every analysis subcommand.

``python -m repro`` promises: 0 = all checks passed, 1 = at least one
violation / failed obligation (for the differential gates, only under
``--strict``), 2 = configuration or usage error. These tests pin the
convention for verify/mc/cost/chaos/replay/prove/lint so a subcommand
cannot silently drift — CI scripts branch on these codes.
"""

import pytest

from repro.__main__ import main

# Small problem sizes keep each invocation sub-second; the codes are
# what is under test, not the analyses themselves.
CLEAN_INVOCATIONS = [
    ["verify", "--collective", "bcast_opt", "--nranks", "4"],
    ["mc", "--collective", "bcast_opt", "--nranks", "3", "--nbytes", "1KiB"],
    ["cost", "--collective", "bcast_opt", "--nranks", "4"],
    ["chaos", "--collective", "bcast_opt", "--nranks", "4", "--nbytes", "1KiB"],
    ["replay", "--collective", "bcast_opt", "--nranks", "4"],
    ["prove", "--collective", "bcast_opt", "--xval", "2:6"],
    ["lint"],
]

CONFIG_ERROR_INVOCATIONS = [
    ["verify", "--collective", "no_such_collective", "--nranks", "4"],
    ["verify", "--nranks", "bogus"],
    ["verify", "--nranks", ""],
    ["mc", "--nranks", "0"],
    ["cost", "--collective", "no_such_collective"],
    ["cost", "--nbytes", "one-meg"],
    ["chaos", "--collective", "no_such_collective", "--nranks", "4"],
    ["replay", "--collective", "no_such_collective", "--nranks", "4"],
    ["prove", "--collective", "no_such_collective"],
    ["prove", "--xval", "banana"],
    ["prove", "--xval", "9:2"],
    ["traffic", "--procs", "x,y"],
    ["audit", "no-such-artifact", "--dir", "/nonexistent-artifact-store"],
]


class TestExitCodes:
    @pytest.mark.parametrize(
        "argv", CLEAN_INVOCATIONS, ids=lambda a: " ".join(a)
    )
    def test_clean_run_exits_zero(self, argv, capsys):
        assert main(argv) == 0
        capsys.readouterr()

    @pytest.mark.parametrize(
        "argv", CONFIG_ERROR_INVOCATIONS, ids=lambda a: " ".join(a)
    )
    def test_config_error_exits_two(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error" in err.lower()

    def test_prove_strict_skipped_crossval_exits_one(self, capsys):
        # --no-crossval downgrades the proof; --strict refuses the
        # downgrade: that is a failed check (1), not a usage error (2).
        argv = ["prove", "--collective", "bcast_opt", "--no-crossval"]
        assert main(argv) == 0
        assert main(argv + ["--strict"]) == 1
        capsys.readouterr()

    def test_lint_violation_exits_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nx = time.time()\n")
        assert main(["lint", str(dirty)]) == 1
        assert main(["lint", str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_tampered_certificate_exits_one(self, monkeypatch, capsys):
        import repro.analysis.certify as certify

        monkeypatch.setattr(
            certify, "PAPER_CASES", {8: (99, 56, 44), 10: (15, 90, 75)}
        )
        argv = ["prove", "--collective", "bcast_opt", "--no-crossval"]
        assert main(argv) == 1
        capsys.readouterr()

    def test_cache_fsck_follows_the_convention(
        self, tmp_path, monkeypatch, capsys
    ):
        # 0 on a clean (even empty) cache, 1 when corruption is found,
        # 0 again after --repair rewrites the damaged shard.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "--fsck"]) == 0
        from repro.core import DiskCache, RunRecord

        DiskCache(tmp_path).put(
            "k1",
            RunRecord(
                algorithm="scatter_ring_opt", nranks=8, nbytes=65536,
                root=0, time=1e-4, messages=28, bytes_on_wire=131072,
                intra_messages=28, inter_messages=0, machine="ideal",
            ),
        )
        shard = sorted((tmp_path / "shards").glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-19])
        assert main(["cache", "--fsck"]) == 1
        assert main(["cache", "--fsck", "--repair"]) == 0
        assert main(["cache", "--fsck"]) == 0
        capsys.readouterr()
