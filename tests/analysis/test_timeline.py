"""Tests for trace timeline analysis."""

import pytest

from repro.analysis import (
    MessageSpan,
    ascii_timeline,
    busiest_rank,
    message_spans,
    phase_summary,
    rank_activity,
)
from repro.core import simulate_bcast
from repro.errors import ConfigurationError
from repro.machine import hornet, ideal
from repro.sim import Trace


def traced_bcast(algorithm="scatter_ring_opt", P=8, nbytes=65536, spec=None):
    trace = Trace()
    simulate_bcast(
        spec if spec is not None else ideal(nodes=2, cores_per_node=8),
        P,
        nbytes,
        algorithm=algorithm,
        trace=trace,
    )
    return trace


class TestMessageSpans:
    def test_spans_match_transfer_count(self):
        trace = traced_bcast(P=8)
        spans = message_spans(trace)
        # scatter (7) + tuned ring (44).
        assert len(spans) == 51

    def test_spans_are_causal_and_ordered(self):
        spans = message_spans(traced_bcast())
        for s in spans:
            assert s.end > s.start
            assert s.duration > 0
        starts = [s.start for s in spans]
        assert starts == sorted(starts)

    def test_phase_labels(self):
        spans = message_spans(traced_bcast())
        phases = {s.phase for s in spans}
        assert phases == {"scatter", "ring"}

    def test_manual_trace_roundtrip(self):
        trace = Trace()
        trace.emit(1.0, "send_launch", src=0, dst=1, tag=2, nbytes=10)
        trace.emit(3.0, "recv_complete", src=0, dst=1, tag=2, nbytes=10)
        (span,) = message_spans(trace)
        assert span == MessageSpan(0, 1, 2, 10, 1.0, 3.0)

    def test_delivery_without_launch_rejected(self):
        trace = Trace()
        trace.emit(3.0, "recv_complete", src=0, dst=1, tag=2, nbytes=10)
        with pytest.raises(ConfigurationError):
            message_spans(trace)

    def test_fifo_pairing_per_channel(self):
        trace = Trace()
        trace.emit(0.0, "send_launch", src=0, dst=1, tag=0, nbytes=1)
        trace.emit(1.0, "send_launch", src=0, dst=1, tag=0, nbytes=2)
        trace.emit(2.0, "recv_complete", src=0, dst=1, tag=0, nbytes=1)
        trace.emit(4.0, "recv_complete", src=0, dst=1, tag=0, nbytes=2)
        spans = message_spans(trace)
        assert [(s.nbytes, s.start) for s in spans] == [(1, 0.0), (2, 1.0)]


class TestPhaseSummary:
    def test_scatter_precedes_ring(self):
        summary = phase_summary(traced_bcast())
        assert summary["scatter"]["start"] < summary["ring"]["start"]
        assert summary["scatter"]["messages"] == 7
        assert summary["ring"]["messages"] == 44

    def test_bytes_accounted(self):
        summary = phase_summary(traced_bcast(P=8, nbytes=800))
        # Tuned ring moves native bytes minus the skipped deliveries.
        assert summary["ring"]["bytes"] == 7 * 800 - 12 * 100

    def test_durations_nonnegative(self):
        for entry in phase_summary(traced_bcast()).values():
            assert entry["duration"] >= 0


class TestRankActivity:
    def test_every_rank_participates(self):
        trace = traced_bcast(P=8)
        activity = rank_activity(trace, 8)
        assert all(len(spans) > 0 for spans in activity)

    def test_root_is_send_heavy(self):
        trace = traced_bcast(P=8)
        activity = rank_activity(trace, 8)
        sends_of_root = sum(1 for s in activity[0] if s.src == 0)
        recvs_of_root = sum(1 for s in activity[0] if s.dst == 0)
        assert recvs_of_root == 0  # tuned ring: root never receives
        assert sends_of_root > 0

    def test_busiest_rank_valid(self):
        trace = traced_bcast(P=8)
        assert 0 <= busiest_rank(trace, 8) < 8

    def test_bad_nranks(self):
        with pytest.raises(ConfigurationError):
            rank_activity(Trace(), 0)


class TestAsciiTimeline:
    def test_rows_per_rank(self):
        trace = traced_bcast(P=8)
        text = ascii_timeline(trace, 8, width=40)
        lines = text.splitlines()
        assert len(lines) == 9  # header + 8 ranks
        assert all("#" in l for l in lines[1:])

    def test_tag_filter(self):
        trace = traced_bcast(P=8)
        ring_only = ascii_timeline(trace, 8, width=40, tag=2)
        assert "#" in ring_only

    def test_empty_filter(self):
        trace = traced_bcast(P=8)
        assert ascii_timeline(trace, 8, tag=99) == "(no transfers)"

    def test_width_validated(self):
        with pytest.raises(ConfigurationError):
            ascii_timeline(Trace(), 4, width=2)
