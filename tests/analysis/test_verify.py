"""Tests for the static schedule verifier (repro.analysis.verify)."""

import json

import pytest

from repro.analysis.verify import (
    RendezvousReport,
    analyze_rendezvous,
    expected_redundant_native,
    find_match_hazards,
    verifiable_collectives,
    verify_collective,
    verify_program,
    verify_provenance,
)
from repro.collectives import subtree_chunks
from repro.collectives.schedule import RecordedSend, ScheduleResult
from repro.errors import ConfigurationError
from repro.util import ChunkSet


def prog_factory(body):
    def factory(ctx):
        return body(ctx)

    return factory


def fake_schedule(nranks, sends):
    """A ScheduleResult built by hand, with sequential clocks."""
    recorded = [
        RecordedSend(order=i, src=s[0], dst=s[1], nbytes=s[2], tag=s[3], chunks=s[4])
        for i, s in enumerate(sends)
    ]
    return ScheduleResult(
        sends=recorded,
        rank_results=[None] * nranks,
        nranks=nranks,
        issue_clock={i: 2 * i for i in range(len(recorded))},
        match_clock={i: 2 * i + 1 for i in range(len(recorded))},
    )


class TestProvenance:
    def test_clean_relay_passes(self):
        # 0 owns {0,1}; ships both to 1; 1 relays chunk 1 to 2.
        sched = fake_schedule(
            3,
            [
                (0, 1, 8, 0, (0, 1)),
                (1, 2, 4, 0, (1,)),
            ],
        )
        initial = [ChunkSet(2, [0, 1]), ChunkSet(2), ChunkSet(2)]
        violations, redundant, owned = verify_provenance(sched, initial)
        assert violations == [] and redundant == []
        assert sorted(owned[1]) == [0, 1] and sorted(owned[2]) == [1]

    def test_unowned_send_is_provenance_violation(self):
        sched = fake_schedule(2, [(0, 1, 4, 0, (1,))])
        initial = [ChunkSet(2, [0]), ChunkSet(2)]
        violations, _, _ = verify_provenance(sched, initial)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind == "provenance" and v.rank == 0 and v.send_order == 0
        assert "chunks [1]" in v.detail

    def test_fully_owned_transfer_is_redundant(self):
        sched = fake_schedule(2, [(0, 1, 4, 0, (0,))])
        initial = [ChunkSet(2, [0]), ChunkSet(2, [0])]
        violations, redundant, _ = verify_provenance(sched, initial)
        assert violations == []
        assert [r.order for r in redundant] == [0]

    def test_zero_byte_transfer_never_redundant(self):
        sched = fake_schedule(2, [(0, 1, 0, 0, (1,))])
        initial = [ChunkSet(2, [0, 1]), ChunkSet(2, [0, 1])]
        _, redundant, _ = verify_provenance(sched, initial)
        assert redundant == []

    def test_missing_final_chunks_is_completeness_violation(self):
        sched = fake_schedule(2, [(0, 1, 4, 0, (0,))])
        initial = [ChunkSet(2, [0, 1]), ChunkSet(2)]
        expect = [ChunkSet.full(2), ChunkSet.full(2)]
        violations, _, _ = verify_provenance(sched, initial, expect)
        assert [v.kind for v in violations] == ["completeness"]
        assert violations[0].rank == 1 and "[1]" in violations[0].detail

    def test_untagged_sends_are_skipped(self):
        sched = fake_schedule(2, [(0, 1, 4, 0, ())])
        initial = [ChunkSet(2), ChunkSet(2)]
        violations, redundant, _ = verify_provenance(sched, initial)
        assert violations == [] and redundant == []

    def test_rank_count_mismatch_rejected(self):
        sched = fake_schedule(2, [])
        with pytest.raises(ConfigurationError):
            verify_provenance(sched, [ChunkSet(2)])


class TestMatchHazards:
    def test_overlapping_different_chunks_flagged(self):
        sched = fake_schedule(2, [(0, 1, 4, 7, (0,)), (0, 1, 4, 7, (1,))])
        # Second send issued before the first matched.
        sched.issue_clock = {0: 0, 1: 1}
        sched.match_clock = {0: 2, 1: 3}
        hazards = find_match_hazards(sched)
        assert len(hazards) == 1
        h = hazards[0]
        assert (h.src, h.dst, h.tag) == (0, 1, 7)
        assert (h.first_order, h.second_order) == (0, 1)

    def test_sequenced_sends_not_flagged(self):
        sched = fake_schedule(2, [(0, 1, 4, 7, (0,)), (0, 1, 4, 7, (1,))])
        # First send matched before the second was issued: no overlap.
        sched.issue_clock = {0: 0, 1: 2}
        sched.match_clock = {0: 1, 1: 3}
        assert find_match_hazards(sched) == []

    def test_identical_payloads_never_hazardous(self):
        sched = fake_schedule(2, [(0, 1, 4, 7, (0,)), (0, 1, 4, 7, (0,))])
        sched.issue_clock = {0: 0, 1: 1}
        sched.match_clock = {0: 2, 1: 3}
        assert find_match_hazards(sched) == []

    def test_unmatched_first_send_is_conservatively_overlapping(self):
        sched = fake_schedule(2, [(0, 1, 4, 7, (0,)), (0, 1, 8, 7, (1,))])
        sched.match_clock = {}  # nothing ever matched
        assert len(find_match_hazards(sched)) == 1


class TestRendezvous:
    def test_head_to_head_sends_deadlock(self):
        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.send(peer, 1024)
            yield from ctx.recv(peer, 1024)

        report = analyze_rendezvous(2, prog_factory(body))
        assert report.deadlocked
        ranks_in_cycle = {e.rank for e in report.cycle}
        assert ranks_in_cycle == {0, 1}
        assert "send(dst=1" in report.describe()

    def test_sendrecv_pairing_is_safe(self):
        def body(ctx):
            peer = 1 - ctx.rank
            if ctx.rank == 0:
                yield from ctx.send(peer, 64)
                yield from ctx.recv(peer, 64)
            else:
                yield from ctx.recv(peer, 64)
                yield from ctx.send(peer, 64)

        report = analyze_rendezvous(2, prog_factory(body))
        assert not report.deadlocked
        assert report.describe() == "rendezvous-safe"

    def test_nonblocking_exchange_is_safe(self):
        def body(ctx):
            peer = 1 - ctx.rank
            s = yield from ctx.isend(peer, 64)
            r = yield from ctx.irecv(peer, 64)
            yield from ctx.waitall([s, r])

        report = analyze_rendezvous(2, prog_factory(body))
        assert not report.deadlocked

    def test_three_rank_cycle_reported_in_order(self):
        def body(ctx):
            nxt = (ctx.rank + 1) % 3
            yield from ctx.send(nxt, 32)
            yield from ctx.recv((ctx.rank - 1) % 3, 32)

        report = analyze_rendezvous(3, prog_factory(body))
        assert report.deadlocked and len(report.cycle) == 3
        # Each edge's target is the next edge's source, cyclically.
        for e, nxt in zip(report.cycle, report.cycle[1:] + report.cycle[:1]):
            assert e.waits_on == nxt.rank

    def test_all_registry_collectives_rendezvous_safe(self):
        for name in verifiable_collectives(8):
            rep = verify_collective(name, 8, nbytes=4096)
            assert rep.rendezvous is not None and not rep.rendezvous.deadlocked, name


class TestVerifyProgram:
    def test_seeded_deadlock_flagged_as_violation(self):
        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.send(peer, 256)
            yield from ctx.recv(peer, 256)

        report = verify_program(
            2,
            prog_factory(body),
            rendezvous_factory=prog_factory(body),
            name="head-to-head",
        )
        assert not report.ok
        assert [v.kind for v in report.violations] == ["deadlock"]
        assert "DEADLOCK cycle" in report.violations[0].detail

    def test_buffered_deadlock_reported_as_error(self):
        def body(ctx):
            peer = 1 - ctx.rank
            yield from ctx.recv(peer, 4)
            yield from ctx.send(peer, 4)

        report = verify_program(2, prog_factory(body))
        assert not report.ok
        assert report.violations[0].kind == "error"
        assert "DeadlockError" in report.violations[0].detail

    def test_redundancy_assertion_mismatch(self):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4, chunks=(0,))
            else:
                yield from ctx.recv(0, 4)

        report = verify_program(
            2,
            prog_factory(body),
            initial_owned=[ChunkSet(2, [0]), ChunkSet(2, [0])],
            expected_redundant=0,
        )
        assert not report.ok
        assert report.violations[0].kind == "redundancy"
        assert report.redundant_count == 1


class TestPaperNumbers:
    """The acceptance numbers from the paper (Section IV)."""

    def test_native_p8_exactly_12_redundant(self):
        rep = verify_collective("bcast_native", 8, nbytes=65536)
        assert rep.ok
        assert rep.transfers == 63  # 7 scatter + 56 ring
        assert rep.redundant_count == 12 and rep.expected_redundant == 12

    def test_opt_p8_zero_redundant(self):
        rep = verify_collective("bcast_opt", 8, nbytes=65536)
        assert rep.ok
        assert rep.transfers == 51  # 7 scatter + 44 ring
        assert rep.redundant_count == 0 and rep.expected_redundant == 0

    def test_native_p10_exactly_15_redundant(self):
        rep = verify_collective("bcast_native", 10, nbytes=65536)
        assert rep.ok
        assert rep.redundant_count == 15 and rep.expected_redundant == 15

    def test_opt_p10_zero_redundant(self):
        rep = verify_collective("bcast_opt", 10, nbytes=65536)
        assert rep.ok and rep.redundant_count == 0

    @pytest.mark.parametrize("nranks", range(2, 33))
    def test_s_minus_p_property(self, nranks):
        """Native redundancy == S - P, tuned == 0, for P in {2..32}."""
        nbytes = 64 * nranks  # uniform chunks by construction
        native = verify_collective("bcast_native", nranks, nbytes=nbytes)
        tuned = verify_collective("bcast_opt", nranks, nbytes=nbytes)
        s = sum(subtree_chunks(r, nranks) for r in range(nranks))
        assert native.ok and native.redundant_count == s - nranks
        assert tuned.ok and tuned.redundant_count == 0

    def test_expected_redundant_closed_form(self):
        assert expected_redundant_native(8) == 12
        assert expected_redundant_native(10) == 15
        assert expected_redundant_native(1) == 0
        # Empty trailing chunks waive the assertion entirely.
        assert expected_redundant_native(8, nbytes=3) is None


class TestRegistrySweep:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 5, 7, 8, 13, 16])
    def test_all_collectives_verify(self, nranks):
        for name in verifiable_collectives(nranks):
            rep = verify_collective(name, nranks, nbytes=4096)
            assert rep.ok, f"{name} P={nranks}: {[str(v) for v in rep.violations]}"

    @pytest.mark.parametrize("nbytes", [0, 1, 3, 17])
    @pytest.mark.parametrize("root", [0, 3])
    def test_degenerate_sizes_and_roots(self, nbytes, root):
        for name in verifiable_collectives(4):
            rep = verify_collective(name, 4, nbytes=nbytes, root=root)
            assert rep.ok, f"{name}: {[str(v) for v in rep.violations]}"

    def test_pof2_only_collectives_rejected_at_odd_p(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            verify_collective("bcast_rdbl", 6)

    def test_unknown_collective_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown collective"):
            verify_collective("bcast_nope", 8)

    def test_verifiable_collectives_filters_by_p(self):
        names = verifiable_collectives(6)
        assert "bcast_native" in names and "bcast_rdbl" not in names
        assert verifiable_collectives() == sorted(verifiable_collectives())


class TestReporting:
    def test_json_roundtrip(self):
        rep = verify_collective("bcast_opt", 4, nbytes=4096)
        data = json.loads(rep.to_json())
        assert data["collective"] == "bcast_opt"
        assert data["nranks"] == 4 and data["ok"] is True
        assert data["redundant_count"] == 0
        assert data["rendezvous_deadlock"] is False

    def test_describe_mentions_counts_and_verdict(self):
        rep = verify_collective("bcast_native", 8, nbytes=65536)
        text = rep.describe()
        assert "redundant transfers: 12 (expected 12)" in text
        assert "verdict: OK" in text

    def test_strict_mode_counts_hazards(self):
        rep = verify_collective("bcast_native", 8, nbytes=65536)
        assert rep.ok and rep.hazards and not rep.ok_strict()

    def test_rendezvous_report_no_cycle_text(self):
        rep = RendezvousReport(deadlocked=True, blocked=["rank 0: recv(...)"])
        assert "orphaned" in rep.describe()

    def test_json_output_is_byte_stable(self):
        # Two independent runs must serialize identically: hazards and
        # violations are sorted by stable keys, not discovery order.
        first = verify_collective("bcast_opt", 6, nbytes=4096).to_json()
        second = verify_collective("bcast_opt", 6, nbytes=4096).to_json()
        assert first == second

    def test_hazards_sorted_by_stable_keys(self):
        rep = verify_collective("alltoall_pairwise", 5, nbytes=4096)
        keys = [
            (h.src, h.dst, h.tag, h.first_order, h.second_order)
            for h in rep.hazards
        ]
        assert keys == sorted(keys)

    def test_violations_sorted_by_stable_keys(self):
        rep = verify_collective("bcast_native", 8, nbytes=65536)
        # Force a redundancy-assertion violation alongside provenance data
        # by lying about the expected count via verify_program.
        from repro.analysis.verify import REGISTRY, verify_program

        spec = REGISTRY["bcast_native"]
        rep = verify_program(
            8,
            spec.build(8, 65536, 0),
            initial_owned=spec.initial_owned(8, 65536, 0),
            expected_final=spec.expected_final(8, 65536, 0),
            expected_redundant=0,
            name="bcast_native",
            nbytes=65536,
        )
        keys = [
            (
                v.kind,
                v.rank if v.rank is not None else -1,
                v.send_order if v.send_order is not None else -1,
                v.detail,
            )
            for v in rep.violations
        ]
        assert keys == sorted(keys)

    def test_hazard_verdict_serialized(self):
        rep = verify_collective("bcast_opt", 6, nbytes=4096, modelcheck=True)
        data = json.loads(rep.to_json())
        assert data["modelcheck"]["ok"] is True
        assert all(h["verdict"] == "benign" for h in data["hazards"])
        unchecked = json.loads(
            verify_collective("bcast_opt", 6, nbytes=4096).to_json()
        )
        assert all(h["verdict"] is None for h in unchecked["hazards"])
        assert unchecked["modelcheck"] is None
