"""Tests for the symbolic all-P savings closed forms."""

import pytest

from repro.analysis import symbolic
from repro.analysis.verify import REGISTRY
from repro.collectives import extract_schedule, subtree_chunks
from repro.core.traffic import (
    ring_bytes_native,
    ring_bytes_tuned,
    ring_transfers_native,
    ring_transfers_tuned,
)
from repro.errors import CollectiveError


class TestRecurrence:
    def test_paper_instances(self):
        assert symbolic.subtree_sum(8) == 20
        assert symbolic.subtree_sum(10) == 25
        assert symbolic.savings(8) == 12
        assert symbolic.savings(10) == 15

    def test_matches_direct_enumeration(self):
        for P in range(1, 129):
            assert symbolic.subtree_sum(P) == sum(
                subtree_chunks(r, P) for r in range(P)
            )

    def test_extents_match_branch_mask_derivation(self):
        for P in range(1, 65):
            assert symbolic.subtree_extents(P) == [
                subtree_chunks(r, P) for r in range(P)
            ]

    def test_pof2_closed_form(self):
        # S(2^k) = 2^k + k * 2^(k-1): each of the k binomial levels
        # contributes half the ranks' worth of extent.
        for k in range(1, 8):
            P = 1 << k
            assert symbolic.subtree_sum(P) == P + k * (P // 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(CollectiveError):
            symbolic.subtree_sum(0)
        with pytest.raises(CollectiveError):
            symbolic.savings(-1)


class TestTransferCounts:
    def test_matches_role_based_derivation(self):
        # core.traffic derives the same counts from per-rank ring roles —
        # an entirely independent code path.
        for P in range(1, 41):
            assert symbolic.ring_transfers_native(P) == ring_transfers_native(P)
            assert symbolic.ring_transfers_tuned(P) == ring_transfers_tuned(P)

    def test_paper_table(self):
        assert symbolic.ring_transfers_native(8) == 56
        assert symbolic.ring_transfers_tuned(8) == 44
        assert symbolic.ring_transfers_native(10) == 90
        assert symbolic.ring_transfers_tuned(10) == 75


class TestByteTotals:
    @pytest.mark.parametrize("P", [2, 3, 5, 8, 10, 16, 17])
    @pytest.mark.parametrize("nbytes", [1, 1000, 65536, 1 << 20])
    def test_tuned_plus_saved_is_native(self, P, nbytes):
        assert symbolic.ring_bytes_tuned(P, nbytes) + symbolic.ring_bytes_saved(
            P, nbytes
        ) == symbolic.ring_bytes_native(P, nbytes)

    @pytest.mark.parametrize("P", [2, 4, 7, 8, 10, 13])
    @pytest.mark.parametrize("nbytes", [4096, 65536, 1000003])
    def test_matches_role_based_bytes(self, P, nbytes):
        assert symbolic.ring_bytes_native(P, nbytes) == ring_bytes_native(P, nbytes)
        assert symbolic.ring_bytes_tuned(P, nbytes) == ring_bytes_tuned(P, nbytes)

    @pytest.mark.parametrize("P", [2, 3, 8, 10, 12])
    def test_bcast_bytes_match_extracted_schedules(self, P):
        nbytes = 1 << 20
        for name, tuned in (("bcast_native", False), ("bcast_opt", True)):
            schedule = extract_schedule(P, REGISTRY[name].build(P, nbytes, 0))
            assert schedule.total_bytes == symbolic.bcast_bytes(P, nbytes, tuned)

    @pytest.mark.parametrize("P", [2, 5, 8, 10])
    def test_scatter_bytes_match_extracted_schedule(self, P):
        nbytes = 1 << 20
        schedule = extract_schedule(P, REGISTRY["scatter"].build(P, nbytes, 0))
        assert schedule.total_bytes == symbolic.scatter_bytes(P, nbytes)

    def test_single_rank_is_free(self):
        assert symbolic.bcast_bytes(1, 1 << 20, tuned=True) == 0
        assert symbolic.scatter_bytes(1, 1 << 20) == 0


class TestProofs:
    def test_proof_holds_for_paper_cases(self):
        for P, (saved, native, tuned) in symbolic.PAPER_CASES.items():
            proof = symbolic.prove_savings(P)
            assert proof.ok
            assert proof.savings == saved
            assert proof.native_transfers == native
            assert proof.tuned_transfers == tuned
            assert "OK" in proof.describe()

    def test_range_proof_is_clean(self):
        assert symbolic.prove_savings_range(2, 64) == []

    def test_range_proof_detects_wrong_pin(self):
        failures = symbolic.prove_savings_range(2, 16, pins={8: 13})
        assert len(failures) == 1
        assert "13" in failures[0]
