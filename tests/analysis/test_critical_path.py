"""Tests for critical-path extraction."""

import pytest

from repro.analysis import critical_path, message_spans
from repro.core import simulate_bcast
from repro.machine import ideal
from repro.sim import Trace


def traced(algorithm, P=8, nbytes=2**16, spec=None):
    trace = Trace()
    simulate_bcast(
        spec if spec is not None else ideal(nodes=2, cores_per_node=8),
        P,
        nbytes,
        algorithm=algorithm,
        trace=trace,
    )
    return trace


class TestCriticalPath:
    def test_empty_trace(self):
        cp = critical_path(Trace())
        assert cp.hops == 0 and cp.duration == 0.0
        assert "(empty trace)" in cp.describe()

    def test_chain_is_causal_and_connected(self):
        cp = critical_path(traced("scatter_ring_opt"))
        for a, b in zip(cp.spans, cp.spans[1:]):
            assert a.end <= b.start + 1e-12
            assert {a.src, a.dst} & {b.src, b.dst}

    def test_duration_lower_bounds_makespan(self):
        trace = traced("scatter_ring_opt", P=8)
        cp = critical_path(trace)
        makespan = max(s.end for s in message_spans(trace))
        assert cp.spans[-1].end == pytest.approx(makespan)
        assert cp.transfer_time <= cp.duration + 1e-12

    def test_ring_path_has_p_minus_1_ring_hops(self):
        """Filtered to the ring phase, the critical chain is the chunk
        that travels the whole ring: at least P-1 hops."""
        P = 8
        cp = critical_path(traced("scatter_ring_native", P=P), tag=2)
        assert cp.hops >= P - 1

    def test_binomial_path_is_log_depth(self):
        P = 16
        cp = critical_path(traced("binomial", P=P))
        # Tree depth 4 (+ slack for the root's serialised sends).
        assert 4 <= cp.hops <= 8

    def test_tight_on_serial_chain(self):
        """On the ideal machine the chain bcast's critical path accounts
        for essentially the whole makespan."""
        trace = traced("chain", P=6, nbytes=2**18)
        cp = critical_path(trace)
        spans = message_spans(trace)
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        assert cp.duration >= 0.8 * (t1 - t0)

    def test_describe_mentions_hops(self):
        cp = critical_path(traced("scatter_ring_opt"))
        assert "hops" in cp.describe()
        assert "->" in cp.describe()


def synthetic(spans, order=None):
    """Build a Trace from (src, dst, tag, start, end) tuples, emitting
    the records in *order* (a permutation of indices) if given."""
    trace = Trace()
    idx = list(order) if order is not None else list(range(len(spans)))
    for i in idx:
        src, dst, tag, start, _ = spans[i]
        trace.emit(start, "send_launch", src=src, dst=dst, tag=tag, nbytes=64)
    for i in idx:
        src, dst, tag, _, end = spans[i]
        trace.emit(end, "recv_complete", src=src, dst=dst, tag=tag, nbytes=64)
    return trace


class TestDeterministicTieBreaking:
    # Three disjoint, simultaneous spans: any could end the "chain".
    EQUAL = [(0, 1, 0, 0.0, 1.0), (2, 3, 0, 0.0, 1.0), (1, 2, 0, 0.0, 1.0)]
    # D feeds E (shared rank 1); F independently ends at the same time
    # with the same accumulated transfer weight.
    CHAINED = [(0, 1, 0, 0.0, 1.0), (1, 2, 0, 1.0, 2.0), (3, 4, 0, 0.0, 2.0)]

    @pytest.mark.parametrize(
        "order", [(0, 1, 2), (2, 1, 0), (1, 2, 0), (2, 0, 1)]
    )
    def test_equal_spans_pick_lowest_endpoint(self, order):
        cp = critical_path(synthetic(self.EQUAL, order))
        assert cp.hops == 1
        span = cp.spans[0]
        assert (span.src, span.dst) == (0, 1)

    @pytest.mark.parametrize(
        "order", [(0, 1, 2), (2, 1, 0), (1, 0, 2), (2, 0, 1)]
    )
    def test_equal_end_prefers_heavier_then_lowest_key(self, order):
        cp = critical_path(synthetic(self.CHAINED, order))
        assert cp.hops == 2
        assert [(s.src, s.dst) for s in cp.spans] == [(0, 1), (1, 2)]

    def test_same_chain_for_every_emission_order(self):
        import itertools

        chains = set()
        for order in itertools.permutations(range(3)):
            cp = critical_path(synthetic(self.EQUAL, order))
            chains.add(tuple((s.src, s.dst, s.tag) for s in cp.spans))
        assert len(chains) == 1

    def test_tag_breaks_final_tie(self):
        # Identical endpoints and times, distinct tags: the lowest tag
        # must win regardless of emission order.
        spans = [(0, 1, 5, 0.0, 1.0), (0, 1, 3, 0.0, 1.0)]
        for order in [(0, 1), (1, 0)]:
            cp = critical_path(synthetic(spans, order))
            assert cp.spans[0].tag == 3
