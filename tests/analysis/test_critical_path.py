"""Tests for critical-path extraction."""

import pytest

from repro.analysis import critical_path, message_spans
from repro.core import simulate_bcast
from repro.machine import ideal
from repro.sim import Trace


def traced(algorithm, P=8, nbytes=2**16, spec=None):
    trace = Trace()
    simulate_bcast(
        spec if spec is not None else ideal(nodes=2, cores_per_node=8),
        P,
        nbytes,
        algorithm=algorithm,
        trace=trace,
    )
    return trace


class TestCriticalPath:
    def test_empty_trace(self):
        cp = critical_path(Trace())
        assert cp.hops == 0 and cp.duration == 0.0
        assert "(empty trace)" in cp.describe()

    def test_chain_is_causal_and_connected(self):
        cp = critical_path(traced("scatter_ring_opt"))
        for a, b in zip(cp.spans, cp.spans[1:]):
            assert a.end <= b.start + 1e-12
            assert {a.src, a.dst} & {b.src, b.dst}

    def test_duration_lower_bounds_makespan(self):
        trace = traced("scatter_ring_opt", P=8)
        cp = critical_path(trace)
        makespan = max(s.end for s in message_spans(trace))
        assert cp.spans[-1].end == pytest.approx(makespan)
        assert cp.transfer_time <= cp.duration + 1e-12

    def test_ring_path_has_p_minus_1_ring_hops(self):
        """Filtered to the ring phase, the critical chain is the chunk
        that travels the whole ring: at least P-1 hops."""
        P = 8
        cp = critical_path(traced("scatter_ring_native", P=P), tag=2)
        assert cp.hops >= P - 1

    def test_binomial_path_is_log_depth(self):
        P = 16
        cp = critical_path(traced("binomial", P=P))
        # Tree depth 4 (+ slack for the root's serialised sends).
        assert 4 <= cp.hops <= 8

    def test_tight_on_serial_chain(self):
        """On the ideal machine the chain bcast's critical path accounts
        for essentially the whole makespan."""
        trace = traced("chain", P=6, nbytes=2**18)
        cp = critical_path(trace)
        spans = message_spans(trace)
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        assert cp.duration >= 0.8 * (t1 - t0)

    def test_describe_mentions_hops(self):
        cp = critical_path(traced("scatter_ring_opt"))
        assert "hops" in cp.describe()
        assert "->" in cp.describe()
