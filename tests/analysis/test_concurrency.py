"""Tests for the concurrency profile — the mechanism made measurable."""

import pytest

from repro.analysis import concurrency_profile
from repro.core import simulate_bcast
from repro.errors import ConfigurationError
from repro.machine import hornet
from repro.sim import Trace


def traced(algorithm, P=16, nbytes=512 * 1024):
    trace = Trace()
    simulate_bcast(hornet(nodes=2), P, nbytes, algorithm=algorithm, trace=trace)
    return trace


class TestConcurrencyProfile:
    def test_native_ring_holds_p_concurrent_transfers(self):
        _, counts = concurrency_profile(traced("scatter_ring_native"), buckets=10, tag=2)
        # The enclosed ring keeps every rank sending at every step.
        assert max(counts) == 16
        assert min(counts) >= 14  # fully loaded almost throughout

    def test_tuned_ring_concurrency_decays(self):
        """The optimisation's signature: in-flight transfers drop toward
        the end of the tuned ring as endpoints go half-duplex."""
        _, counts = concurrency_profile(traced("scatter_ring_opt"), buckets=10, tag=2)
        assert counts[-1] < counts[0]
        assert counts[-1] <= 12

    def test_tuned_total_concurrency_below_native(self):
        _, native = concurrency_profile(traced("scatter_ring_native"), buckets=20, tag=2)
        _, tuned = concurrency_profile(traced("scatter_ring_opt"), buckets=20, tag=2)
        assert sum(tuned) < sum(native)

    def test_times_within_span(self):
        trace = traced("scatter_ring_opt")
        times, counts = concurrency_profile(trace, buckets=5)
        assert len(times) == len(counts) == 5
        assert times == sorted(times)

    def test_empty_selection(self):
        times, counts = concurrency_profile(traced("scatter_ring_opt"), tag=99)
        assert times == [] and counts == []

    def test_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            concurrency_profile(Trace(), buckets=0)

    def test_single_bucket(self):
        _, counts = concurrency_profile(traced("scatter_ring_opt"), buckets=1)
        assert len(counts) == 1 and counts[0] > 0
