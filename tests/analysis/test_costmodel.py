"""Tests for the static α-β/LogGP cost engine and its differential gate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costmodel import (
    analyze_collective,
    analyze_schedule,
    differential_gate,
)
from repro.analysis.verify import REGISTRY
from repro.collectives import extract_schedule
from repro.errors import ConfigurationError
from repro.machine import Machine, ideal
from repro.mpi.runtime import Job


def _sim(name, nranks, nbytes, spec=None):
    machine = Machine(spec if spec is not None else ideal(), nranks, "blocked")
    job = Job(machine, REGISTRY[name].build(nranks, nbytes, 0), working_set=nbytes)
    return job.run()


class TestAnalyzeCollective:
    def test_paper_transfer_counts(self):
        native = analyze_collective("bcast_native", 8, 1 << 20)
        tuned = analyze_collective("bcast_opt", 8, 1 << 20)
        # 7 scatter transfers + 56 vs 44 ring transfers.
        assert native.transfers == 63
        assert tuned.transfers == 51
        assert native.transfers - tuned.transfers == 12

    def test_rounds_reflect_dependency_depth(self):
        # Ring allgather: step k+1 forwards what step k delivered.
        assert analyze_collective("allgather_ring", 8, 1 << 20).rounds == 7
        # Scatter-ring broadcast: 3 scatter levels + 7 ring steps.
        assert analyze_collective("bcast_native", 8, 1 << 20).rounds == 10
        # Dissemination barrier: ceil(log2 P) exchanges.
        assert analyze_collective("barrier", 10, 0).rounds == math.ceil(
            math.log2(10)
        )

    def test_t_bound_is_max_of_chain_and_link(self):
        report = analyze_collective("bcast_opt", 8, 1 << 20)
        assert report.t_bound == max(report.t_chain, report.t_link)
        assert report.t_chain > 0 and report.t_link > 0

    def test_busiest_link_is_heaviest_load(self):
        report = analyze_collective("bcast_native", 8, 1 << 20)
        busiest = report.busiest_link
        assert busiest is not None
        assert busiest.drain_time == max(
            load.drain_time for load in report.link_loads
        )
        assert sum(r for r in busiest.by_round.values()) == busiest.nbytes

    def test_per_round_loads_sum_to_totals(self):
        report = analyze_collective("allgather_ring", 8, 1 << 20)
        assert sum(report.round_messages.values()) == report.transfers
        for load in report.link_loads:
            assert sum(load.by_round.values()) == load.nbytes

    def test_deterministic(self):
        a = analyze_collective("bcast_opt", 10, 1 << 20)
        b = analyze_collective("bcast_opt", 10, 1 << 20)
        assert a.to_dict() == b.to_dict()

    def test_placement_splits_levels(self):
        report = analyze_collective(
            "allgather_ring", 8, 65536, spec=ideal(nodes=2, cores_per_node=4)
        )
        assert report.intra_messages + report.inter_messages == report.transfers
        assert report.inter_messages > 0

    def test_unknown_collective(self):
        with pytest.raises(ConfigurationError):
            analyze_collective("nope", 8)

    def test_pof2_only_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_collective("bcast_rdbl", 10)

    def test_describe_and_json(self):
        report = analyze_collective("bcast_opt", 8, 65536)
        text = report.describe()
        assert "bcast_opt" in text and "t_bound" in text
        data = report.to_dict()
        assert data["transfers"] == report.transfers
        assert data["t_bound"] == report.t_bound


class TestTimeBoundSoundness:
    @pytest.mark.parametrize(
        "name", ["bcast_native", "bcast_opt", "allgather_ring", "bcast_binomial"]
    )
    @pytest.mark.parametrize("nbytes", [65536, 1 << 20])
    def test_lower_bounds_ideal_makespan(self, name, nbytes):
        report = analyze_collective(name, 8, nbytes)
        result = _sim(name, 8, nbytes)
        assert report.t_bound <= result.time * (1 + 1e-9)
        assert report.t_bound >= 0.5 * result.time

    def test_chain_exact_on_serial_scan(self):
        # scan_linear is a pure chain: the DP bound is the makespan.
        report = analyze_collective("scan_linear", 8, 65536)
        result = _sim("scan_linear", 8, 65536)
        assert report.t_chain == pytest.approx(result.time, rel=1e-9)

    def test_counters_match_simulation(self):
        report = analyze_collective("bcast_opt", 10, 1 << 20)
        counters = _sim("bcast_opt", 10, 1 << 20).counters
        assert report.transfers == counters.messages
        assert report.total_bytes == counters.bytes
        assert report.sent_bytes_by_rank == counters.bytes_sent_by_rank
        assert report.received_bytes_by_rank == counters.bytes_received_by_rank
        assert report.intra_messages == counters.intra_messages
        assert report.inter_messages == counters.inter_messages


class TestByteAccountingProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(sorted(REGISTRY)),
        nranks=st.integers(min_value=2, max_value=17),
        nbytes=st.sampled_from([0, 1, 100, 65536, 1000003, 1 << 20]),
    )
    def test_static_totals_equal_executor_counters(self, name, nranks, nbytes):
        """For every registry collective, any P in 2..17 and degenerate
        sizes (0 B, 1 B, non-divisible), the cost report's per-rank
        sent/received byte and message tallies must equal an independent
        ScheduleExecutor extraction's."""
        spec = REGISTRY[name]
        if not spec.supports(nranks):
            return
        report = analyze_collective(name, nranks, nbytes)
        schedule = extract_schedule(nranks, spec.build(nranks, nbytes, 0))
        sent_bytes, received_bytes = {}, {}
        sent_msgs, received_msgs = {}, {}
        for s in schedule.sends:
            sent_bytes[s.src] = sent_bytes.get(s.src, 0) + s.nbytes
            received_bytes[s.dst] = received_bytes.get(s.dst, 0) + s.nbytes
            sent_msgs[s.src] = sent_msgs.get(s.src, 0) + 1
            received_msgs[s.dst] = received_msgs.get(s.dst, 0) + 1
        assert report.transfers == schedule.transfers
        assert report.total_bytes == schedule.total_bytes
        assert report.sent_bytes_by_rank == sent_bytes
        assert report.received_bytes_by_rank == received_bytes
        assert report.sent_messages_by_rank == sent_msgs
        assert report.received_messages_by_rank == received_msgs


class TestAnalyzeSchedule:
    def test_schedule_larger_than_machine_rejected(self):
        schedule = extract_schedule(8, REGISTRY["barrier"].build(8, 0, 0))
        machine = Machine(ideal(nodes=1, cores_per_node=4), 4)
        with pytest.raises(ConfigurationError):
            analyze_schedule(schedule, machine)

    def test_handmade_schedule_without_dep_metadata(self):
        # Schedules built by hand (tests, external tools) have empty
        # observed/dep_counts: every send lands in round 1 and the chain
        # bound degrades to the single heaviest message.
        schedule = extract_schedule(4, REGISTRY["barrier"].build(4, 0, 0))
        schedule.observed = {}
        schedule.dep_counts = {}
        machine = Machine(ideal(), 4)
        report = analyze_schedule(schedule, machine)
        assert report.rounds == 1
        assert report.t_chain == 0.0  # nothing was provably consumed


class TestDifferentialGate:
    def test_small_gate_passes(self):
        report = differential_gate(
            static_ranks=(4, 8), sim_ranks=(8,), sizes=(65536,)
        )
        assert report.ok, report.describe()
        counts = report.counts()
        assert counts["bytes"][0] == counts["bytes"][1]
        assert "verdict: OK" in report.describe()

    def test_gate_to_dict(self):
        report = differential_gate(
            static_ranks=(4,), sim_ranks=(), sizes=(65536,), symbolic_max=16
        )
        data = report.to_dict()
        assert data["ok"] is True
        assert data["counts"]["symbolic"]["total"] >= 1

    def test_rejects_jittery_spec(self):
        with pytest.raises(ConfigurationError):
            differential_gate(spec=ideal(jitter_sigma=0.1))

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            differential_gate(band=0.0)

    def test_progress_callback(self):
        lines = []
        differential_gate(
            static_ranks=(4,), sim_ranks=(), sizes=(65536,),
            symbolic_max=8, progress=lines.append,
        )
        assert any("pass" in line for line in lines)
