"""Tests for the chaos differential gate."""

from repro.analysis.chaos import (
    ChaosCheck,
    chaos_gate,
    default_plans,
    run_chaos_point,
)
from repro.sim import FaultPlan


class TestDefaultPlans:
    def test_grid_shape(self):
        plans = default_plans(seed=0)
        names = [p.name for p in plans]
        assert names == ["zero", "drop5", "drop20", "dup_corrupt", "slow", "crash"]
        assert plans[0].is_zero
        assert len({p.digest() for p in plans}) == len(plans)

    def test_seed_threads_through(self):
        assert default_plans(0)[1].digest() != default_plans(100)[1].digest()


class TestRunChaosPoint:
    def test_zero_plan_is_perfect_noop(self):
        check = run_chaos_point("bcast_opt", 5, FaultPlan.none())
        assert check.status == "ok"
        assert (check.drops, check.retrans, check.timeouts, check.acks) == (
            0, 0, 0, 0,
        )

    def test_drops_recovered_with_identical_payloads(self):
        plan = FaultPlan.uniform(seed=1, drop_p=0.2, name="drop20")
        check = run_chaos_point("bcast_opt", 5, plan)
        assert check.status == "ok"
        assert check.drops > 0 and check.retrans > 0

    def test_crash_yields_typed_exhaustion(self):
        plan = FaultPlan.none(name="crash").with_crash(1)
        check = run_chaos_point("bcast_binomial", 5, plan)
        assert check.status == "exhausted"
        assert "presumed dead" in check.detail

    def test_point_is_deterministic(self):
        plan = FaultPlan.uniform(seed=3, drop_p=0.15, dup_p=0.1, name="mix")
        assert run_chaos_point("bcast_native", 5, plan) == run_chaos_point(
            "bcast_native", 5, plan
        )


class TestGate:
    def test_small_gate_passes_with_degradation_check(self):
        report = chaos_gate(seed=0, collectives=["bcast_opt"], ranks=[5])
        assert report.ok
        first = report.checks[0]
        assert first.collective == "selector_degradation" and first.ok
        # degradation check + 6 plans for the one collective
        assert len(report.checks) == 1 + len(default_plans(0))

    def test_report_serialises(self):
        report = chaos_gate(seed=0, collectives=["bcast_binomial"], ranks=[5])
        data = report.to_dict()
        assert data["ok"] is True and data["seed"] == 0
        assert len(data["checks"]) == len(report.checks)
        assert "verdict: OK" in report.describe()

    def test_failures_surface_in_describe(self):
        bad = ChaosCheck("x", 4, "p", "fail", detail="boom")
        report = chaos_gate(seed=0, collectives=[], ranks=[])
        doctored = type(report)(
            checks=report.checks + (bad,),
            seed=report.seed,
            nbytes=report.nbytes,
            machine=report.machine,
        )
        assert not doctored.ok and doctored.failures == [bad]
        assert "FAIL x P=4 plan=p: boom" in doctored.describe()
        assert "verdict: FAIL" in doctored.describe()

    def test_unsupported_rank_skipped(self):
        # scatter_rdbl is pof2-only: P=5 must be skipped, not failed.
        report = chaos_gate(
            seed=0, collectives=["bcast_rdbl"], ranks=[5]
        )
        assert len(report.checks) == 1  # degradation check only

    def test_progress_callback_invoked(self):
        seen = []
        chaos_gate(
            seed=0,
            collectives=["bcast_binomial"],
            ranks=[5],
            plans=[FaultPlan.none()],
            progress=seen.append,
        )
        assert seen == ["chaos bcast_binomial P=5 plan=zero"]


class TestDegradation:
    def test_selector_prefers_binomial_under_crash(self):
        from repro.collectives.selector import LONG_MSG_SIZE, choose_bcast_name

        crash = FaultPlan.none().with_crash(1)
        assert (
            choose_bcast_name(LONG_MSG_SIZE, 10, tuned=True, faults=crash)
            == "binomial"
        )
        assert (
            choose_bcast_name(LONG_MSG_SIZE, 10, tuned=True, faults=FaultPlan.none())
            == "scatter_ring_opt"
        )
        # Short messages never used the ring; the crash changes nothing.
        short = choose_bcast_name(1024, 10, tuned=True, faults=crash)
        assert short == choose_bcast_name(1024, 10, tuned=True)
