"""Model-checker property fuzz: DPOR terminals match the DES reference.

Two properties, both over randomly drawn small schedules:

1. For any registry collective at small P, the (unique) DPOR terminal
   state's per-rank payload digests equal the final buffers of a real
   DES run of the same program over identically seeded buffers — the
   abstract executor and the simulator agree bit-for-bit.
2. For random wildcard race programs (where real branching exists),
   DPOR explores exactly the same set of distinct terminal outcomes as
   the naive full enumeration, with no more states.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.chaos import _make_buffers
from repro.analysis.modelcheck import buffer_digests, check_collective, check_program
from repro.analysis.verify import REGISTRY
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer
from repro.mpi.ops import ANY_SOURCE

NAMES = sorted(REGISTRY)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_dpor_terminal_matches_des_reference(data):
    nranks = data.draw(st.integers(min_value=2, max_value=4))
    supported = [n for n in NAMES if REGISTRY[n].supports(nranks)]
    name = data.draw(st.sampled_from(supported))
    nbytes = data.draw(st.sampled_from([64, 257, 1024]))
    root = (
        data.draw(st.integers(min_value=0, max_value=nranks - 1))
        if name.startswith("bcast")
        else 0
    )

    report = check_collective(name, nranks, nbytes=nbytes, root=root)
    assert report.ok and report.complete, report.describe()
    assert report.executions == 1  # the registry is wildcard-free

    bufs = _make_buffers(name, nranks, nbytes)
    Job(
        Machine(ideal(), nranks),
        REGISTRY[name].build(nranks, nbytes, root),
        buffers=bufs,
    ).run()
    assert report.payload_digest == buffer_digests(bufs)


def _race_program(nsenders, tags):
    def factory(ctx):
        def program():
            if ctx.rank == 0:
                for i in range(nsenders):
                    yield from ctx.recv(ANY_SOURCE, 4, disp=4 * i)
            else:
                yield from ctx.send(0, 4, tag=tags[ctx.rank - 1])

        return program()

    return factory


@settings(deadline=None, max_examples=15)
@given(data=st.data())
def test_dpor_explores_same_terminals_as_naive_on_wildcard_races(data):
    nsenders = data.draw(st.integers(min_value=1, max_value=3))
    nranks = nsenders + 1
    tags = tuple(
        data.draw(st.integers(min_value=0, max_value=2)) for _ in range(nsenders)
    )
    identical_payloads = data.draw(st.booleans())

    def make_buffers():
        return [
            RealBuffer.from_array(
                np.full(16, 7, dtype=np.uint8)
                if identical_payloads
                else np.arange(16, dtype=np.uint8) + 40 * r
            )
            for r in range(nranks)
        ]

    kwargs = dict(
        make_buffers=make_buffers, name="fuzz-race", max_states=100000
    )
    dpor = check_program(
        nranks, lambda: _race_program(nsenders, tags), mode="dpor", **kwargs
    )
    naive = check_program(
        nranks, lambda: _race_program(nsenders, tags), mode="naive", **kwargs
    )
    assert dpor.complete and naive.complete
    assert dpor.terminals == naive.terminals
    # Execution *counts* per label are mode-dependent (naive's state
    # fingerprints merge converging interleavings; DPOR walks each
    # maximal branch), but the outcome labels themselves must agree.
    assert set(dpor.outcomes) == set(naive.outcomes)
    assert {v.kind for v in dpor.violations} == {
        v.kind for v in naive.violations
    }
    assert dpor.states <= naive.states
    if identical_payloads:
        assert dpor.ok, dpor.describe()
