"""Tests for the symbolic abstract domain (repro.analysis.abstract).

The certificate checker's verdicts are only as trustworthy as the
domain underneath, so these tests exercise the domain directly: linear
arithmetic, Fourier-Motzkin entailment, the divisibility rules (pof2
chain, residue rewriting, contrapositive), and the modular interval
sets — plus brute-force soundness spot checks against concrete
enumeration.
"""

from fractions import Fraction

import pytest

from repro.analysis.abstract import (
    AbstractDomainError,
    Env,
    Interval,
    Lin,
    RingSet,
    SymSet,
    concrete_members,
    const,
    lin,
    var,
)

P = var("P")
e = var("e")
s = var("s")


class TestLin:
    def test_arithmetic(self):
        expr = 2 * P - e + 3
        assert expr.coeff("P") == 2
        assert expr.coeff("e") == -1
        assert expr.evaluate({"P": 8, "e": 3}) == Fraction(16)

    def test_sub_and_neg(self):
        assert ((P - P) + 0).is_constant
        assert (-(P - 1)).evaluate({"P": 5}) == -4
        assert (3 - P).evaluate({"P": 1}) == 2

    def test_substitute(self):
        expr = (P - e).substitute({"e": const(1)})
        assert expr.evaluate({"P": 10}) == 9

    def test_str_roundtrippable_enough(self):
        assert "P" in str(P - 1)

    def test_lin_builder(self):
        expr = lin(-1, P=1)
        assert expr.evaluate({"P": 4}) == 3


class TestEntailment:
    def test_basic_order(self):
        env = Env().assume(P - 2)  # P >= 2
        assert env.entails(P - 2)
        assert env.entails(P - 1)  # P >= 1 follows
        assert not env.entails(P - 3)  # P >= 3 does not

    def test_integer_strengthening(self):
        # P > 1 over integers means P >= 2: entails_lt uses the -1 slack.
        env = Env().assume(P - 2)
        assert env.entails_lt(const(1), P)
        assert not env.entails_lt(const(2), P)

    def test_entails_eq(self):
        env = Env().assume_eq(e, 1)
        assert env.entails_eq(e, 1)
        assert not env.entails_eq(e, 2)

    def test_infeasible_env_detected(self):
        env = Env().assume(P - 2, 1 - P)  # P >= 2 and P <= 1
        assert not env.feasible()

    def test_split_partitions(self):
        env = Env().assume(P - 2)
        hi, lo = env.split(P - 5)  # P >= 5 vs P <= 4
        assert hi.entails(P - 5)
        assert lo.entails(4 - P)
        assert hi.feasible() and lo.feasible()

    def test_non_integer_coefficients_rejected(self):
        with pytest.raises(AbstractDomainError):
            Env().entails(P.scale(Fraction(1, 2)))

    def test_soundness_against_enumeration(self):
        # Any entailed fact must hold at every concrete model.
        env = Env().assume(P - 2, e - 1, P - e)  # 2<=P, 1<=e<=P
        claims = [P - e, P + e - 3, 2 * P - e - 2]
        for claim in claims:
            assert env.entails(claim)
            for Pv in range(2, 12):
                for ev in range(1, Pv + 1):
                    assert claim.evaluate({"P": Pv, "e": ev}) >= 0


class TestDivisibility:
    def test_constant_divides(self):
        env = Env()
        assert env.divisibility(4 * P, 2) is True

    def test_pof2_gap_rule(self):
        # pof2 m, M with m <= M  =>  m | M  (powers of two form a chain).
        m, M = var("m"), var("M")
        env = Env().with_pof2("m", "M").assume(M - m)
        assert env.divisibility(M, m) is True

    def test_pof2_gap_needs_order(self):
        m, M = var("m"), var("M")
        env = Env().with_pof2("m", "M")  # no order: can't conclude
        assert env.divisibility(M, m) is not True

    def test_declared_multiple(self):
        m, u = var("m"), var("u")
        env = Env().with_pof2("m").with_multiple("u", 2 * m)
        assert env.divisibility(u, m) is True

    def test_residue_rewriting(self):
        # u multiple of 2m  =>  (u + m) mod m == 0, (u + m + 1) mod m != 0
        # when 0 < 1 < m.
        m, u = var("m"), var("u")
        env = (
            Env()
            .with_pof2("m")
            .with_multiple("u", 2 * m)
            .assume(m - 2, u)
        )
        assert env.divisibility(u + m, m) is True
        assert env.divisibility(u + m + 1, m) is False

    def test_unknown_returns_none(self):
        env = Env().assume(P - 2)
        assert env.divisibility(P + 1, 3) is None

    def test_soundness_concrete(self):
        m, u = var("m"), var("u")
        env = (
            Env()
            .with_pof2("m")
            .with_multiple("u", 2 * m)
            .assume(m - 2, u)
        )
        for mv in (2, 4, 8):
            for uv in range(0, 64, 2 * mv):
                assert (uv + mv) % mv == 0
                assert (uv + mv + 1) % mv != 0


class TestIntervalsAndSets:
    def test_interval_contains(self):
        env = Env().assume(e - 1, P - e, P - 2)
        iv = Interval.make(0, e - 1)
        assert iv.contains(env, 0)
        assert iv.contains(env, e - 1)
        assert iv.excludes(env, e)
        assert iv.excludes(env, -1)

    def test_interval_length(self):
        env = Env().assume(e - 1)
        length = Interval.make(0, e - 1).length(env)
        assert length is not None
        assert env.assume_eq(e, 5).entails_eq(length, 5)

    def test_symset_union_cardinality(self):
        env = Env().assume(P - 4)
        ss = SymSet.make(Interval.make(0, 1), Interval.make(3, P - 1))
        card = ss.cardinality(env)
        assert card is not None
        assert env.entails_eq(card, P - 1)

    def test_ringset_wraps(self):
        env = Env().assume(P - 2, e - 1, P - e, s - 1, P - 1 - s)
        rs = RingSet.make(env, P, Interval.make(-s, e - 1))
        assert rs.contains(env, -s)
        assert rs.contains(env, 0)
        # Wrapped membership via the +P shift.
        assert rs.contains(env, -s + P - P)

    def test_ringset_cardinality(self):
        env = Env().assume(P - 3, s - 1, P - 2 - s)
        rs = RingSet.make(env, P, Interval.make(-s, 0))
        card = rs.cardinality(env)
        assert card is not None
        assert env.entails_eq(card, s + 1)

    def test_ringset_rejects_uncanonical_offsets(self):
        env = Env().assume(P - 2)
        rs = RingSet.make(env, P, Interval.make(0, 0))
        with pytest.raises(AbstractDomainError):
            rs.contains(env, 2 * P)

    def test_concrete_members_matches_ringset(self):
        # Spot-check the symbolic ring set against concrete enumeration
        # at several (P, s, e) instantiations.
        for Pv in (2, 3, 5, 8, 13):
            for ev in range(1, Pv + 1):
                for sv in range(0, Pv):
                    members = concrete_members([(-sv, ev - 1)], Pv)
                    expected = sorted(
                        {x % Pv for x in range(-sv, ev)}
                    )
                    assert members == expected


class TestRefutations:
    """Wrong claims must come back False, not True — the checker's
    value is in what it rejects."""

    def test_wrong_cardinality_rejected(self):
        env = Env().assume(P - 4)
        ss = SymSet.make(Interval.make(0, P - 1))
        card = ss.cardinality(env)
        assert card is not None
        assert not env.entails_eq(card, P - 1)

    def test_overclaimed_membership_rejected(self):
        env = Env().assume(P - 2, e - 1, P - e - 1)  # e <= P - 1
        iv = Interval.make(0, e - 1)
        assert not iv.contains(env, e)

    def test_vacuous_proofs_guarded(self):
        # An infeasible env proves everything; certificates must check
        # feasibility first, and the domain must report it honestly.
        env = Env().assume(P - 2, 1 - P)
        assert not env.feasible()
        assert env.entails(const(-1))  # vacuously true: flagged by feasible()
