"""Tests for the replay differential gate (repro.analysis.replaygate)."""

import json

from repro.analysis.replaygate import (
    DEFAULT_RANKS,
    DEFAULT_SIZES,
    ReplayCheck,
    ReplayReport,
    replay_gate,
    run_replay_point,
)
from repro.machine import hornet, ideal


class TestRunReplayPoint:
    def test_clean_cell_is_ok(self):
        check = run_replay_point("bcast_opt", 8, 12288)
        assert check.status == "ok" and check.ok
        assert check.sends > 0

    def test_both_protocol_regimes(self):
        # 512 B is eager, 256 KiB rendezvous on hornet (threshold 8192).
        for nbytes in DEFAULT_SIZES:
            check = run_replay_point("bcast_native", 5, nbytes, spec=hornet())
            assert check.status == "ok", check.detail

    def test_ideal_spec(self):
        check = run_replay_point("allgather_ring", 6, 4096, spec=ideal())
        assert check.status == "ok", check.detail

    def test_to_dict_round_trips_json(self):
        check = run_replay_point("barrier", 4, 0)
        assert json.loads(json.dumps(check.to_dict()))["status"] == "ok"


class TestReplayGate:
    def test_subset_grid_passes(self):
        report = replay_gate(
            collectives=["bcast_opt", "bcast_binomial", "barrier"],
            ranks=(2, 5, 8),
            sizes=(512, 12288),
        )
        assert report.ok, report.describe()
        # barrier supports every P; bcast variants too => 3 * 3 * 2 cells
        assert len(report.checks) == 18
        assert report.failures == []

    def test_describe_names_verdict(self):
        report = replay_gate(collectives=["barrier"], ranks=(2,), sizes=(0,))
        text = report.describe()
        assert "verdict: OK" in text and "bitwise-equal" in text

    def test_failures_surface_in_report(self):
        bad = ReplayCheck("fake", 4, 512, "fail", detail="boom")
        good = ReplayCheck("barrier", 4, 512, "ok")
        report = ReplayReport(checks=(bad, good), machine="test")
        assert not report.ok
        assert report.failures == [bad]
        assert "boom" in report.describe()
        assert report.to_dict()["ok"] is False

    def test_unsupported_counts_as_ok(self):
        skip = ReplayCheck("fake", 4, 512, "unsupported", detail="wildcard")
        report = ReplayReport(checks=(skip,), machine="test")
        assert report.ok
        assert "1 unsupported fallback(s)" in report.describe()

    def test_default_grid_constants(self):
        # The CI gate spans both protocols and non-pof2 rank counts.
        assert any(n <= 8192 for n in DEFAULT_SIZES)  # eager on hornet
        assert any(n > 8192 for n in DEFAULT_SIZES)  # rendezvous
        assert any(p & (p - 1) for p in DEFAULT_RANKS)  # non-pof2
