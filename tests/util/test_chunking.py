"""Tests for the MPICH-compatible chunking math (Listing 1 of the paper)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CollectiveError
from repro.util import chunking
from repro.util.chunking import (
    Chunk,
    scatter_size,
    chunk,
    chunks,
    chunk_count,
    chunk_disp,
    nonempty_chunks,
    total_bytes,
)


class TestScatterSize:
    def test_even_division(self):
        assert scatter_size(800, 8) == 100

    def test_ceiling_division(self):
        # Listing 1: scatter_size = (nbytes + comm_size - 1) / comm_size
        assert scatter_size(10, 3) == 4
        assert scatter_size(1, 8) == 1

    def test_zero_bytes(self):
        assert scatter_size(0, 5) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(CollectiveError):
            scatter_size(10, 0)
        with pytest.raises(CollectiveError):
            scatter_size(-1, 4)


class TestChunkShapes:
    def test_trailing_chunk_short(self):
        # 10 bytes over 3 ranks: 4 + 4 + 2.
        assert [chunk_count(10, 3, i) for i in range(3)] == [4, 4, 2]

    def test_trailing_chunks_empty(self):
        # 9 bytes over 8 ranks: ssize=2 -> 2,2,2,2,1,0,0,0.
        counts = [chunk_count(9, 8, i) for i in range(8)]
        assert counts == [2, 2, 2, 2, 1, 0, 0, 0]

    def test_disp_clamped_to_buffer(self):
        assert chunk_disp(9, 8, 7) == 9

    def test_chunk_record(self):
        c = chunk(10, 3, 2)
        assert c == Chunk(index=2, disp=8, count=2)
        assert c.end == 10
        assert not c.empty

    def test_out_of_range_index(self):
        with pytest.raises(CollectiveError):
            chunk_count(10, 3, 3)
        with pytest.raises(CollectiveError):
            chunk_disp(10, 3, -1)

    def test_nonempty_filter(self):
        assert len(nonempty_chunks(9, 8)) == 5
        assert nonempty_chunks(0, 4) == []


_chunk_args = given(
    nbytes=st.integers(min_value=0, max_value=10**7),
    nprocs=st.integers(min_value=1, max_value=300),
)


class TestChunkingProperties:
    @_chunk_args
    def test_total_is_exact(self, nbytes, nprocs):
        assert total_bytes(nbytes, nprocs) == nbytes

    @_chunk_args
    def test_chunks_tile_buffer(self, nbytes, nprocs):
        """Non-empty chunks are contiguous, ordered and cover [0, nbytes)."""
        cursor = 0
        for c in chunks(nbytes, nprocs):
            if c.count:
                assert c.disp == cursor
                cursor = c.end
        assert cursor == nbytes

    @_chunk_args
    def test_counts_bounded_by_scatter_size(self, nbytes, nprocs):
        ssize = scatter_size(nbytes, nprocs)
        for c in chunks(nbytes, nprocs):
            assert 0 <= c.count <= ssize

    @_chunk_args
    def test_matches_pseudocode_formula(self, nbytes, nprocs):
        """Counts equal the clamped Listing-1 expression verbatim."""
        ssize = scatter_size(nbytes, nprocs)
        for i in range(nprocs):
            expected = min(ssize, nbytes - i * ssize)
            if expected < 0:
                expected = 0
            assert chunk_count(nbytes, nprocs, i) == expected


def test_module_exports():
    for name in chunking.__all__:
        assert hasattr(chunking, name)
