"""Unit tests for byte-size parsing/formatting and power-of-two helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util import (
    KIB,
    MIB,
    GIB,
    parse_size,
    format_size,
    is_power_of_two,
    next_power_of_two,
    prev_power_of_two,
    ceil_log2,
    floor_log2,
    pow2_range,
)


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(4096) == 4096

    def test_plain_float_truncates(self):
        assert parse_size(1536.7) == 1536

    def test_bare_number_string(self):
        assert parse_size("12288") == 12288

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KIB),
            ("1KiB", KIB),
            ("1k", KIB),
            ("512KB", 512 * KIB),
            ("2MB", 2 * MIB),
            ("2MiB", 2 * MIB),
            ("1.5MiB", int(1.5 * MIB)),
            ("1GB", GIB),
            ("3g", 3 * GIB),
            ("10b", 10),
            ("  7 KB ", 7 * KIB),
        ],
    )
    def test_units_are_base2(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "1TBx", "1 foo", "--3KB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            parse_size(True)


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (KIB, "1KiB"),
            (12288, "12KiB"),
            (2 * MIB, "2MiB"),
            (GIB, "1GiB"),
        ],
    )
    def test_exact_units(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_fractional(self):
        assert format_size(1536) == "1.5KiB"

    def test_negative(self):
        assert format_size(-2 * MIB) == "-2MiB"

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_through_parse(self, n):
        # format -> parse loses at most the formatting precision.
        text = format_size(n, precision=6)
        back = parse_size(text)
        assert abs(back - n) <= max(1, n // 10**5)


class TestPow2Helpers:
    def test_is_power_of_two_basics(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(256)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    @given(st.integers(min_value=1, max_value=2**30))
    def test_next_prev_bracket(self, n):
        np2, pp2 = next_power_of_two(n), prev_power_of_two(n)
        assert is_power_of_two(np2) and is_power_of_two(pp2)
        assert pp2 <= n <= np2
        assert np2 < 2 * n
        assert pp2 > n // 2

    @given(st.integers(min_value=1, max_value=2**30))
    def test_logs_consistent(self, n):
        assert 2 ** ceil_log2(n) == next_power_of_two(n)
        assert 2 ** floor_log2(n) == prev_power_of_two(n)
        assert ceil_log2(n) - floor_log2(n) in (0, 1)

    def test_ceil_log2_is_binomial_depth(self):
        # The paper: scatter finishes in ceil(log2 P) steps; 10 procs -> 4.
        assert ceil_log2(10) == 4
        assert ceil_log2(8) == 3

    def test_pow2_range_matches_paper_axis(self):
        # Fig. 6 x-axis: 2^19 .. 2^25.
        assert pow2_range(2**19, 2**25) == [2**k for k in range(19, 26)]

    def test_pow2_range_rounds_start_up(self):
        assert pow2_range(3, 16) == [4, 8, 16]

    def test_rejects_bad_inputs(self):
        for fn in (next_power_of_two, prev_power_of_two, ceil_log2, floor_log2):
            with pytest.raises(ConfigurationError):
                fn(0)
        with pytest.raises(ConfigurationError):
            pow2_range(8, 4)
