"""Tests for ChunkSet, the ownership tracker behind the ring invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CollectiveError
from repro.util import ChunkSet


class TestBasics:
    def test_empty(self):
        cs = ChunkSet(8)
        assert len(cs) == 0
        assert not cs.is_full
        assert cs.missing() == list(range(8))

    def test_add_and_contains(self):
        cs = ChunkSet(8)
        assert cs.add(3)
        assert 3 in cs
        assert 4 not in cs
        assert not cs.add(3)  # second add reports "already owned"

    def test_full_constructor(self):
        cs = ChunkSet.full(5)
        assert cs.is_full
        assert len(cs) == 5
        assert cs.missing() == []

    def test_interval_wraps(self):
        # Relative rank 6 of P=8 owning [6, 6+2) = {6, 7}; rank 7 with
        # length 3 wraps: {7, 0, 1}.
        assert sorted(ChunkSet.interval(8, 6, 2)) == [6, 7]
        assert sorted(ChunkSet.interval(8, 7, 3)) == [0, 1, 7]

    def test_interval_full_universe(self):
        assert ChunkSet.interval(4, 2, 4).is_full

    def test_bad_universe(self):
        with pytest.raises(CollectiveError):
            ChunkSet(0)

    def test_bad_index(self):
        cs = ChunkSet(4)
        with pytest.raises(CollectiveError):
            cs.add(4)
        with pytest.raises(CollectiveError):
            cs.add(-1)
        with pytest.raises(CollectiveError):
            8 in cs

    def test_add_strict_raises_on_duplicate(self):
        cs = ChunkSet(4, [1])
        cs.add_strict(2)
        with pytest.raises(CollectiveError):
            cs.add_strict(1)

    def test_union_update(self):
        a = ChunkSet(6, [0, 1])
        b = ChunkSet(6, [1, 5])
        a.union_update(b)
        assert sorted(a) == [0, 1, 5]

    def test_union_universe_mismatch(self):
        with pytest.raises(CollectiveError):
            ChunkSet(4).union_update(ChunkSet(5))

    def test_copy_is_independent(self):
        a = ChunkSet(4, [2])
        b = a.copy()
        b.add(3)
        assert 3 not in a and 3 in b

    def test_equality_and_hash(self):
        assert ChunkSet(4, [1, 2]) == ChunkSet(4, [2, 1])
        assert ChunkSet(4, [1]) != ChunkSet(5, [1])
        assert hash(ChunkSet(4, [1])) == hash(ChunkSet(4, [1]))

    def test_repr_mentions_members(self):
        assert "ChunkSet(4, [1, 3])" == repr(ChunkSet(4, [3, 1]))


class TestModularInterval:
    def test_empty_and_full_are_intervals(self):
        assert ChunkSet(6).is_modular_interval()
        assert ChunkSet.full(6).is_modular_interval()

    def test_plain_run(self):
        assert ChunkSet(8, [2, 3, 4]).is_modular_interval()

    def test_wrapping_run(self):
        assert ChunkSet(8, [7, 0, 1]).is_modular_interval()

    def test_gap_is_not_interval(self):
        assert not ChunkSet(8, [1, 3]).is_modular_interval()

    @given(
        universe=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    def test_interval_constructor_always_interval(self, universe, data):
        start = data.draw(st.integers(min_value=0, max_value=universe - 1))
        length = data.draw(st.integers(min_value=0, max_value=universe))
        cs = ChunkSet.interval(universe, start, length)
        assert len(cs) == length
        assert cs.is_modular_interval()


@given(
    universe=st.integers(min_value=1, max_value=128),
    data=st.data(),
)
def test_set_semantics_match_python_set(universe, data):
    """ChunkSet behaves exactly like a Python set of indices."""
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=universe - 1), max_size=40)
    )
    cs = ChunkSet(universe)
    ref = set()
    for idx in indices:
        assert cs.add(idx) == (idx not in ref)
        ref.add(idx)
    assert sorted(cs) == sorted(ref)
    assert len(cs) == len(ref)
    assert cs.is_full == (len(ref) == universe)
    assert cs.missing() == sorted(set(range(universe)) - ref)
