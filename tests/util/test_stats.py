"""Tests for the summary-statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util import (
    mean,
    geomean,
    median,
    stdev,
    percent_change,
    speedup,
    summarize,
)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_geomean(self):
        assert math.isclose(geomean([1, 4]), 2.0)

    def test_stdev_single_sample(self):
        assert stdev([5.0]) == 0.0

    def test_stdev_known(self):
        assert math.isclose(stdev([2, 4, 4, 4, 5, 5, 7, 9]), math.sqrt(32 / 7))

    def test_empty_rejected(self):
        for fn in (mean, geomean, median, stdev, summarize):
            with pytest.raises(ConfigurationError):
                fn([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geomean([1, 0])


class TestPaperMetrics:
    def test_percent_change_matches_paper_style(self):
        # "improved by 12%": native 2623 -> opt 2937.76.
        assert math.isclose(percent_change(2623, 2623 * 1.12), 12.0)

    def test_percent_change_signed(self):
        assert percent_change(100, 90) == -10.0

    def test_percent_change_zero_base(self):
        with pytest.raises(ConfigurationError):
            percent_change(0, 1)

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_speedup_nonpositive(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)

    @given(st.lists(positive, min_size=1, max_size=50))
    def test_speedup_percent_consistency(self, times):
        # speedup s corresponds to percent change (s-1)*100 of bandwidth.
        base = times[0]
        for t in times:
            s = speedup(base, t)
            bw_change = percent_change(1.0 / base, 1.0 / t)
            assert math.isclose((s - 1.0) * 100.0, bw_change, rel_tol=1e-6, abs_tol=1e-9)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == 2.0 and s["median"] == 2.0

    @given(st.lists(finite, min_size=1, max_size=100))
    def test_bounds(self, vals):
        s = summarize(vals)
        slack = 1e-12 * max(1.0, abs(s["min"]), abs(s["max"]))
        assert s["min"] - slack <= s["median"] <= s["max"] + slack
        assert s["min"] - slack <= s["mean"] <= s["max"] + slack
        assert s["stdev"] >= 0.0


@given(st.lists(positive, min_size=1, max_size=60))
def test_geomean_le_mean(vals):
    """AM-GM inequality as a sanity property."""
    assert geomean(vals) <= mean(vals) * (1 + 1e-9)
