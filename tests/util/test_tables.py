"""Tests for ASCII table and key/value rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.util import Table, render_kv


class TestTable:
    def test_basic_render(self):
        t = Table(["size", "bw"])
        t.add_row("1MiB", 123.456)
        text = t.render()
        lines = text.splitlines()
        assert "size" in lines[0] and "bw" in lines[0]
        assert "123.456" in lines[-1]
        assert "1MiB" in lines[-1]

    def test_title_and_rule(self):
        t = Table(["a"], title="Figure 6(a)")
        t.add_row(1)
        text = t.render()
        assert text.splitlines()[0] == "Figure 6(a)"
        assert set(text.splitlines()[1]) == {"="}

    def test_column_alignment(self):
        t = Table(["x", "verylongheader"])
        t.add_row(1, 2)
        t.add_row(100000, 3)
        header, sep, r1, r2 = t.render().splitlines()
        assert len(header) == len(sep) == len(r1) == len(r2)

    def test_custom_formats(self):
        t = Table(["pct"], formats=["+.1f"])
        t.add_row(12.345)
        assert "+12.3" in t.render()

    def test_callable_format(self):
        t = Table(["n"], formats=[lambda v: f"<{v}>"])
        t.add_row(7)
        assert "<7>" in t.render()

    def test_none_cell_renders_dash(self):
        t = Table(["v"])
        t.add_row(None)
        assert t.render().splitlines()[-1].strip() == "-"

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add_row(1)

    def test_formats_arity_checked(self):
        with pytest.raises(ConfigurationError):
            Table(["a", "b"], formats=["d"])

    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_str_equals_render(self):
        t = Table(["a"])
        t.add_row(1)
        assert str(t) == t.render()

    def test_empty_table_renders_header_only(self):
        text = Table(["col"]).render()
        assert "col" in text


class TestRenderKv:
    def test_alignment(self):
        text = render_kv([("short", 1), ("much longer key", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = render_kv([("k", "v")], title="Setup")
        assert text.splitlines()[0] == "Setup"

    def test_empty_pairs(self):
        assert render_kv([], title="t") == "t"
