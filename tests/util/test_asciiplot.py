"""Tests for the terminal line-plot renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.util import line_plot


def test_single_series_renders_markers():
    text = line_plot({"bw": ([1, 2, 3], [10, 20, 30])})
    assert "o" in text
    assert "o=bw" in text


def test_two_series_distinct_markers():
    text = line_plot(
        {"native": ([1, 2], [1, 2]), "opt": ([1, 2], [2, 3])}
    )
    assert "o=native" in text and "x=opt" in text


def test_log_axes_render_powers():
    text = line_plot(
        {"s": ([2**19, 2**25], [256, 4096])}, logx=True, logy=True
    )
    # Axis labels come back in linear units.
    assert "524288" in text or "5.24e" in text


def test_title_and_labels():
    text = line_plot(
        {"s": ([0, 1], [0, 1])},
        title="Fig 6(a)",
        xlabel="Message Size",
        ylabel="MB/s",
    )
    assert text.splitlines()[0] == "Fig 6(a)"
    assert "Message Size" in text
    assert "MB/s" in text


def test_constant_series_ok():
    # Zero y-span must not divide by zero.
    text = line_plot({"flat": ([1, 2, 3], [5, 5, 5])})
    assert "o" in text


def test_rejects_empty():
    with pytest.raises(ConfigurationError):
        line_plot({})
    with pytest.raises(ConfigurationError):
        line_plot({"s": ([], [])})


def test_rejects_mismatched_lengths():
    with pytest.raises(ConfigurationError):
        line_plot({"s": ([1, 2], [1])})


def test_rejects_nonpositive_on_log_axis():
    with pytest.raises(ConfigurationError):
        line_plot({"s": ([0, 1], [1, 2])}, logx=True)


def test_rejects_tiny_canvas():
    with pytest.raises(ConfigurationError):
        line_plot({"s": ([1], [1])}, width=4, height=2)


def test_plot_width_respected():
    text = line_plot({"s": ([1, 2], [1, 2])}, width=40, height=8)
    body_lines = [l for l in text.splitlines() if "|" in l]
    assert all(len(l.split("|", 1)[1]) <= 40 for l in body_lines)
