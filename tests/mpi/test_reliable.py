"""Tests for the ARQ reliable transport under injected faults."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlockError, TransportExhaustedError
from repro.machine import Machine, ideal
from repro.mpi import ANY_TAG, Job, RealBuffer, ReliableConfig
from repro.sim import FaultPlan, LinkRule


def make_machine(nranks, eager_threshold=8192):
    return Machine(ideal(eager_threshold=eager_threshold), nranks=nranks)


def ping_factory(nbytes=1024, tag=7):
    """Rank 0 sends one message to rank 1."""

    def factory(ctx):
        def program():
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes, tag=tag)
            elif ctx.rank == 1:
                status = yield from ctx.recv(0, nbytes, tag=tag)
                return status.nbytes
            return None

        return program()

    return factory


def drop_first(src=0, dst=1, n=1):
    """Plan that deterministically eats the first *n* transmissions."""
    return FaultPlan.none(name=f"drop_first_{n}").with_rule(
        LinkRule(src=src, dst=dst, op_lo=0, op_hi=n, drop_p=1.0, label="eaten")
    )


class TestCleanPath:
    def test_zero_faults_delivers_with_one_ack(self):
        bufs = [RealBuffer.from_array(np.full(1024, r + 1, dtype=np.uint8))
                for r in range(2)]
        job = Job(make_machine(2), ping_factory(), buffers=bufs, reliable=True)
        result = job.run()
        c = result.counters
        assert result.rank_results[1] == 1024
        assert np.array_equal(bufs[1].array, bufs[0].array)
        assert (c.messages, c.ack_messages) == (1, 1)
        assert c.retrans_messages == c.timeouts == c.drops_injected == 0

    def test_wire_counters_match_plain_transport(self):
        plain = Job(make_machine(2), ping_factory()).run().counters
        arq = Job(make_machine(2), ping_factory(), reliable=True).run().counters
        assert (arq.messages, arq.bytes) == (plain.messages, plain.bytes)
        assert not plain.has_chaos


class TestRecovery:
    def test_drop_recovered_by_retransmit(self):
        bufs = [RealBuffer.from_array(np.full(1024, r + 5, dtype=np.uint8))
                for r in range(2)]
        job = Job(
            make_machine(2),
            ping_factory(),
            buffers=bufs,
            faults=drop_first(),
            reliable=True,
        )
        c = job.run().counters
        assert np.array_equal(bufs[1].array, bufs[0].array)
        assert c.drops_injected == 1
        assert c.retrans_messages >= 1 and c.timeouts >= 1
        # First transmission only in the wire counters, recovery separate.
        assert c.messages == 1 and c.retrans_bytes >= 1024

    def test_corruption_is_discarded_then_recovered(self):
        plan = FaultPlan.none(name="corrupt_first").with_rule(
            LinkRule(src=0, dst=1, op_lo=0, op_hi=1, corrupt_p=1.0)
        )
        bufs = [RealBuffer.from_array(np.full(512, r + 9, dtype=np.uint8))
                for r in range(2)]
        job = Job(
            make_machine(2), ping_factory(512), buffers=bufs,
            faults=plan, reliable=True,
        )
        c = job.run().counters
        assert np.array_equal(bufs[1].array, bufs[0].array)
        assert c.corrupt_injected == 1 and c.corrupt_dropped == 1
        assert c.retrans_messages >= 1

    def test_duplicate_suppressed_single_delivery(self):
        plan = FaultPlan.none(name="dup_first").with_rule(
            LinkRule(src=0, dst=1, op_lo=0, op_hi=1, dup_p=1.0)
        )
        job = Job(make_machine(2), ping_factory(), faults=plan, reliable=True)
        result = job.run()
        c = result.counters
        assert result.rank_results[1] == 1024  # exactly one recv completed
        assert c.dup_injected == 1 and c.dup_suppressed >= 1
        assert c.messages == 1

    def test_inorder_reassembly_preserves_non_overtaking(self):
        """Dropping message #0 must not let message #1 overtake it."""

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 256, tag=11)
                    yield from ctx.send(1, 256, tag=22)
                elif ctx.rank == 1:
                    tags = []
                    for _ in range(2):
                        status = yield from ctx.recv(0, 256, tag=ANY_TAG)
                        tags.append(status.tag)
                    return tags
                return None

            return program()

        job = Job(make_machine(2), factory, faults=drop_first(), reliable=True)
        assert job.run().rank_results[1] == [11, 22]


class TestHalfDuplex:
    def test_ack_completion_breaks_rendezvous_deadlock(self):
        """Blocking send-then-recv ring: rendezvous deadlocks on the
        plain transport, the ARQ layer's transport-level ACK does not."""
        nranks, nbytes = 4, 4096  # above the 1KiB eager threshold below

        def factory(ctx):
            def program():
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                yield from ctx.send(right, nbytes, tag=1)
                yield from ctx.recv(left, nbytes, tag=1)
                return None

            return program()

        with pytest.raises(DeadlockError):
            Job(make_machine(nranks, eager_threshold=1024), factory).run()
        result = Job(
            make_machine(nranks, eager_threshold=1024), factory, reliable=True
        ).run()
        assert result.counters.messages == nranks


class TestExhaustion:
    def test_crash_raises_typed_error_naming_link(self):
        plan = FaultPlan.none(name="crash").with_crash(1)
        cfg = ReliableConfig(max_retries=3)
        job = Job(
            make_machine(2), ping_factory(), faults=plan, reliable=cfg
        )
        with pytest.raises(TransportExhaustedError) as exc_info:
            job.run()
        exc = exc_info.value
        assert (exc.src, exc.dst, exc.tag) == (0, 1, 7)
        assert exc.attempts == cfg.max_retries + 1
        assert "crash(rank 1)" in str(exc)

    def test_exhaustion_is_deterministic(self):
        plan = FaultPlan.none(name="crash").with_crash(1)

        def attempts():
            job = Job(make_machine(2), ping_factory(), faults=plan, reliable=True)
            with pytest.raises(TransportExhaustedError) as exc_info:
                job.run()
            return exc_info.value.attempts

        assert attempts() == attempts()


class TestPlainTransportFaults:
    def test_rendezvous_drop_reported_in_deadlock(self):
        """On the plain transport a dropped rendezvous send blocks the
        sender forever; the deadlock report must name the injected drop."""
        plan = FaultPlan.none(name="drop100").with_rule(
            LinkRule(src=0, dst=1, drop_p=1.0, label="drop100")
        )
        job = Job(
            make_machine(2, eager_threshold=1024),
            ping_factory(nbytes=4096),
            faults=plan,
        )
        with pytest.raises(DeadlockError) as exc_info:
            job.run()
        text = str(exc_info.value)
        assert "injected" in text and "drop 0->1" in text

    def test_eager_drop_counts_and_completes_sender(self):
        plan = drop_first()

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 256, tag=1)  # eager: fire and forget
                return None

            return program()

        c = Job(make_machine(2), factory, faults=plan).run().counters
        assert c.drops_injected == 1 and c.messages == 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliableConfig(min_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ReliableConfig(backoff=0.5)
        with pytest.raises(ConfigurationError):
            ReliableConfig(max_retries=-1)

    def test_backoff_grows_timeout(self):
        from repro.mpi.reliable import ReliableTransport

        job = Job(make_machine(2), ping_factory(), reliable=True)
        transport = job.transport
        assert isinstance(transport, ReliableTransport)
        plan = transport.machine.transfer_plan(0, 1)
        t1 = transport._timeout_seconds(plan, 1024, attempts=1)
        t3 = transport._timeout_seconds(plan, 1024, attempts=3)
        assert t3 == pytest.approx(t1 * transport.config.backoff ** 2)
