"""Unit tests for the traffic counters."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi import TrafficCounters


class TestRecord:
    def test_single_intra(self):
        c = TrafficCounters()
        c.record(0, 1, 100, intra=True)
        assert c.messages == 1 and c.bytes == 100
        assert c.intra_messages == 1 and c.inter_messages == 0
        assert c.sent_by_rank == {0: 1}
        assert c.received_by_rank == {1: 1}
        assert c.bytes_sent_by_rank == {0: 100}

    def test_levels_split(self):
        c = TrafficCounters()
        c.record(0, 1, 10, intra=True)
        c.record(0, 2, 20, intra=False)
        assert (c.intra_messages, c.inter_messages) == (1, 1)
        assert (c.intra_bytes, c.inter_bytes) == (10, 20)

    def test_as_dict(self):
        c = TrafficCounters()
        c.record(0, 1, 10, intra=False)
        d = c.as_dict()
        assert d["messages"] == 1 and d["inter_bytes"] == 10

    def test_repr(self):
        c = TrafficCounters()
        c.record(3, 4, 7, intra=True)
        assert "msgs=1" in repr(c)


class TestMerge:
    def test_merge_accumulates(self):
        a, b = TrafficCounters(), TrafficCounters()
        a.record(0, 1, 10, intra=True)
        b.record(1, 0, 20, intra=False)
        b.record(0, 1, 5, intra=True)
        a.merge(b)
        assert a.messages == 3
        assert a.bytes == 35
        assert a.sent_by_rank == {0: 2, 1: 1}
        assert a.received_by_rank == {1: 2, 0: 1}
        assert a.bytes_sent_by_rank == {0: 15, 1: 20}

    def test_merge_empty(self):
        a = TrafficCounters()
        a.record(0, 1, 1, intra=True)
        a.merge(TrafficCounters())
        assert a.messages == 1

    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=1000),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_property_merge_equals_sequential(self, events):
        """Splitting a stream across two counters and merging equals
        recording everything on one."""
        whole = TrafficCounters()
        left, right = TrafficCounters(), TrafficCounters()
        for i, (src, dst, nbytes, intra) in enumerate(events):
            whole.record(src, dst, nbytes, intra)
            (left if i % 2 == 0 else right).record(src, dst, nbytes, intra)
        left.merge(right)
        assert left.as_dict() == whole.as_dict()
        assert left.sent_by_rank == whole.sent_by_rank
        assert left.received_by_rank == whole.received_by_rank
        assert left.bytes_sent_by_rank == whole.bytes_sent_by_rank

    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=100),
                st.booleans(),
            ),
            max_size=20,
        )
    )
    def test_property_invariants(self, events):
        c = TrafficCounters()
        for src, dst, nbytes, intra in events:
            c.record(src, dst, nbytes, intra)
        assert c.intra_messages + c.inter_messages == c.messages
        assert c.intra_bytes + c.inter_bytes == c.bytes
        assert sum(c.sent_by_rank.values()) == c.messages
        assert sum(c.received_by_rank.values()) == c.messages
        assert sum(c.bytes_sent_by_rank.values()) == c.bytes
