"""Tests for the message-matching engine."""

import pytest

from repro.errors import MatchingError
from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, MatchingEngine, Request


def recv(owner=0, src=1, tag=0, nbytes=8):
    return Request("recv", owner=owner, peer=src, tag=tag, nbytes=nbytes)


def env(src=1, tag=0, nbytes=8, seq=0):
    return Envelope(src=src, tag=tag, nbytes=nbytes, send_req=None, seq=seq)


class TestBasicMatching:
    def test_recv_then_arrival(self):
        eng = MatchingEngine(0)
        r = recv()
        assert eng.post_recv(r) is None
        assert eng.arrive(env()) is r
        assert eng.pending_recvs == 0

    def test_arrival_then_recv(self):
        eng = MatchingEngine(0)
        e = env()
        assert eng.arrive(e) is None
        assert eng.pending_unexpected == 1
        assert eng.post_recv(recv()) is e
        assert eng.pending_unexpected == 0

    def test_mismatched_source_does_not_match(self):
        eng = MatchingEngine(0)
        eng.post_recv(recv(src=2))
        assert eng.arrive(env(src=1)) is None
        assert eng.pending_recvs == 1

    def test_mismatched_tag_does_not_match(self):
        eng = MatchingEngine(0)
        eng.post_recv(recv(tag=5))
        assert eng.arrive(env(tag=6)) is None


class TestWildcards:
    def test_any_source(self):
        eng = MatchingEngine(0)
        r = recv(src=ANY_SOURCE, tag=3)
        eng.post_recv(r)
        assert eng.arrive(env(src=42, tag=3)) is r

    def test_any_tag(self):
        eng = MatchingEngine(0)
        r = recv(src=1, tag=ANY_TAG)
        eng.post_recv(r)
        assert eng.arrive(env(src=1, tag=99)) is r

    def test_fully_wild(self):
        eng = MatchingEngine(0)
        r = recv(src=ANY_SOURCE, tag=ANY_TAG)
        eng.post_recv(r)
        assert eng.arrive(env(src=7, tag=7)) is r


class TestOrdering:
    def test_earliest_posted_recv_wins(self):
        eng = MatchingEngine(0)
        r1, r2 = recv(tag=0), recv(tag=0)
        eng.post_recv(r1)
        eng.post_recv(r2)
        assert eng.arrive(env(tag=0)) is r1
        assert eng.arrive(env(tag=0)) is r2

    def test_earliest_arrival_wins(self):
        eng = MatchingEngine(0)
        e1, e2 = env(seq=0), env(seq=1)
        eng.arrive(e1)
        eng.arrive(e2)
        assert eng.post_recv(recv()) is e1
        assert eng.post_recv(recv()) is e2

    def test_specific_recv_skips_nonmatching_earlier_envelope(self):
        eng = MatchingEngine(0)
        eng.arrive(env(src=5, tag=0))
        e2 = env(src=1, tag=0)
        eng.arrive(e2)
        assert eng.post_recv(recv(src=1)) is e2
        assert eng.pending_unexpected == 1

    def test_wildcard_recv_takes_earliest_of_any(self):
        eng = MatchingEngine(0)
        e1 = env(src=5, tag=2)
        eng.arrive(e1)
        eng.arrive(env(src=1, tag=1))
        assert eng.post_recv(recv(src=ANY_SOURCE, tag=ANY_TAG)) is e1


class TestCancelAndErrors:
    def test_cancel_pending(self):
        eng = MatchingEngine(0)
        r = recv()
        eng.post_recv(r)
        assert eng.cancel_recv(r) is True
        assert eng.arrive(env()) is None

    def test_cancel_unknown_is_false(self):
        assert MatchingEngine(0).cancel_recv(recv()) is False

    def test_rejects_send_request(self):
        eng = MatchingEngine(0)
        send = Request("send", owner=0, peer=1, tag=0, nbytes=4)
        with pytest.raises(MatchingError):
            eng.post_recv(send)

    def test_rejects_foreign_owner(self):
        eng = MatchingEngine(0)
        with pytest.raises(MatchingError):
            eng.post_recv(recv(owner=3))

    def test_describe_blockage(self):
        eng = MatchingEngine(7)
        eng.post_recv(recv(owner=7, src=1, tag=2))
        text = eng.describe_blockage()
        assert "rank 7" in text and "src=1" in text
        assert "idle" in MatchingEngine(0).describe_blockage()


class TestRequestLifecycle:
    def test_finish_fires_callbacks(self):
        r = recv()
        seen = []
        r.on_complete(seen.append)
        r.finish()
        assert seen == [r]

    def test_late_callback_fires_immediately(self):
        r = recv()
        r.finish()
        seen = []
        r.on_complete(seen.append)
        assert seen == [r]

    def test_double_finish_rejected(self):
        from repro.errors import MpiError

        r = recv()
        r.finish()
        with pytest.raises(MpiError):
            r.finish()

    def test_bad_kind_rejected(self):
        from repro.errors import MpiError

        with pytest.raises(MpiError):
            Request("bcast", owner=0, peer=1, tag=0, nbytes=1)
