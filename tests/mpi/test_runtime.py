"""End-to-end tests of the simulated MPI runtime (Job + Transport)."""

import math

import pytest

from repro.errors import DeadlockError, SimulationError, TruncationError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer, Status
from repro.sim import Trace

from .conftest import GIB, make_ideal_machine, run_job


class TestPingTiming:
    def test_rendezvous_ping_time_is_alpha_plus_beta(self, two_rank_machine):
        """On the ideal machine, one N-byte message takes alpha + N/bw."""
        n = GIB // 4

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(n, fill=ctx.rank + 1))
                if ctx.rank == 0:
                    yield from ctx.send(1, n)
                else:
                    yield from ctx.recv(0, n)

            return program()

        res = run_job(two_rank_machine, factory)
        expected = 1e-6 + n / GIB
        assert math.isclose(res.time, expected, rel_tol=1e-9)

    def test_zero_byte_message(self, two_rank_machine):
        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 0)
                else:
                    status = yield from ctx.recv(0, 0)
                    return status.nbytes

            return program()

        res = run_job(two_rank_machine, factory)
        assert res.rank_results[1] == 0
        # Pure latency.
        assert math.isclose(res.time, 1e-6, rel_tol=1e-9)

    def test_back_to_back_messages_serialize(self, two_rank_machine):
        n = GIB // 8

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(n))
                for _ in range(3):
                    if ctx.rank == 0:
                        yield from ctx.send(1, n)
                    else:
                        yield from ctx.recv(0, n)

            return program()

        res = run_job(two_rank_machine, factory)
        # Three sequential rendezvous transfers.
        assert res.time >= 3 * (n / GIB)


class TestDataMovement:
    def test_payload_delivered(self, two_rank_machine):
        n = 1024
        received = {}

        def factory(ctx):
            def program():
                buf = RealBuffer(n, fill=7 if ctx.rank == 0 else 0)
                ctx.attach_buffer(buf)
                if ctx.rank == 0:
                    yield from ctx.send(1, n)
                else:
                    yield from ctx.recv(0, n)
                    received["sum"] = int(buf.array.sum())

            return program()

        run_job(two_rank_machine, factory)
        assert received["sum"] == 7 * n

    def test_displacement_respected(self, two_rank_machine):
        def factory(ctx):
            def program():
                buf = RealBuffer(8, fill=3 if ctx.rank == 0 else 0)
                ctx.attach_buffer(buf)
                if ctx.rank == 0:
                    yield from ctx.send(1, 4, disp=0)
                else:
                    yield from ctx.recv(0, 4, disp=4)
                    return list(buf.array)

            return program()

        res = run_job(two_rank_machine, factory)
        assert res.rank_results[1] == [0, 0, 0, 0, 3, 3, 3, 3]

    def test_shorter_message_than_recv_ok(self, two_rank_machine):
        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(16))
                if ctx.rank == 0:
                    yield from ctx.send(1, 4)
                else:
                    status = yield from ctx.recv(0, 16)
                    return status.nbytes

            return program()

        assert run_job(two_rank_machine, factory).rank_results[1] == 4

    def test_truncation_raises(self, two_rank_machine):
        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(16))
                if ctx.rank == 0:
                    yield from ctx.send(1, 16)
                else:
                    yield from ctx.recv(0, 4)

            return program()

        with pytest.raises(TruncationError):
            run_job(two_rank_machine, factory)


class TestProtocols:
    def _delayed_recv_job(self, eager_threshold):
        machine = make_ideal_machine(2, eager_threshold=eager_threshold)
        finish = {}

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(1024, fill=ctx.rank))
                if ctx.rank == 0:
                    yield from ctx.send(1, 1024)
                    finish["send_done"] = True
                else:
                    yield from ctx.compute(1.0)  # receiver is late
                    yield from ctx.recv(0, 1024)

            return program()

        res = run_job(machine, factory)
        return res

    def test_eager_send_completes_before_recv_posted(self):
        res = self._delayed_recv_job(eager_threshold=4096)
        # Sender finished long before the receiver's 1s compute ended.
        assert res.rank_finish_times[0] < 0.01

    def test_rendezvous_send_blocks_until_recv_posted(self):
        res = self._delayed_recv_job(eager_threshold=0)
        assert res.rank_finish_times[0] >= 1.0

    def test_eager_unexpected_message_delivered_correctly(self):
        machine = make_ideal_machine(2, eager_threshold=1 << 20)

        def factory(ctx):
            def program():
                buf = RealBuffer(64, fill=9 if ctx.rank == 0 else 0)
                ctx.attach_buffer(buf)
                if ctx.rank == 0:
                    yield from ctx.send(1, 64)
                else:
                    yield from ctx.compute(0.5)
                    yield from ctx.recv(0, 64)
                    return int(buf.array.sum())

            return program()

        assert run_job(machine, factory).rank_results[1] == 9 * 64

    def test_protocol_recorded_in_trace(self):
        machine = make_ideal_machine(2, eager_threshold=100)
        trace = Trace()

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(4096))
                if ctx.rank == 0:
                    yield from ctx.send(1, 50)  # eager
                    yield from ctx.send(1, 4096)  # rendezvous
                else:
                    yield from ctx.recv(0, 50)
                    yield from ctx.recv(0, 4096)

            return program()

        run_job(machine, factory, trace=trace)
        protos = [r.protocol for r in trace.by_kind("send_launch")]
        assert protos == ["eager", "rendezvous"]


class TestSendrecvAndNonblocking:
    def test_sendrecv_ring_rotates_data(self, four_rank_machine):
        n = 256

        def factory(ctx):
            def program():
                buf = RealBuffer(n, fill=ctx.rank)
                ctx.attach_buffer(buf)
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                status = yield from ctx.sendrecv(
                    dst=right, send_nbytes=n, src=left, recv_nbytes=n
                )
                return (status.source, int(buf.array[0]))

            return program()

        res = run_job(four_rank_machine, factory)
        # Every rank now holds its left neighbour's value.
        assert res.rank_results == [(3, 3), (0, 0), (1, 1), (2, 2)]

    def test_isend_irecv_waitall(self, four_rank_machine):
        def factory(ctx):
            def program():
                buf = RealBuffer(4 * ctx.size, fill=ctx.rank)
                ctx.attach_buffer(buf)
                reqs = []
                if ctx.rank == 0:
                    for peer in range(1, ctx.size):
                        reqs.append((yield from ctx.irecv(peer, 4, disp=4 * peer)))
                    statuses = yield from ctx.waitall(reqs)
                    return sorted(s.source for s in statuses)
                req = yield from ctx.isend(0, 4)
                status = yield from ctx.wait(req)
                assert status is None  # sends carry no status
                return None

            return program()

        res = run_job(four_rank_machine, factory)
        assert res.rank_results[0] == [1, 2, 3]

    def test_any_source_recv(self, four_rank_machine):
        from repro.mpi import ANY_SOURCE

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(16))
                if ctx.rank == 0:
                    seen = []
                    for _ in range(ctx.size - 1):
                        status = yield from ctx.recv(ANY_SOURCE, 16)
                        seen.append(status.source)
                    return sorted(seen)
                yield from ctx.compute(ctx.rank * 0.001)
                yield from ctx.send(0, 8)

            return program()

        res = run_job(four_rank_machine, factory)
        assert res.rank_results[0] == [1, 2, 3]

    def test_wait_on_non_request_rejected(self, two_rank_machine):
        from repro.mpi import WaitOp

        def factory(ctx):
            def program():
                yield WaitOp(requests=("bogus",))

            return program()

        with pytest.raises(SimulationError):
            run_job(two_rank_machine, factory)


class TestFailureModes:
    def test_deadlock_detected(self, two_rank_machine):
        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(8))
                # Both ranks receive first: classic deadlock.
                yield from ctx.recv((ctx.rank + 1) % 2, 8)
                yield from ctx.send((ctx.rank + 1) % 2, 8)

            return program()

        with pytest.raises(DeadlockError) as exc:
            run_job(two_rank_machine, factory)
        assert "blocked" in str(exc.value)

    def test_one_sided_send_without_recv_deadlocks(self, two_rank_machine):
        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(1 << 20))
                if ctx.rank == 0:
                    yield from ctx.send(1, 1 << 20)  # rendezvous, never matched

            return program()

        with pytest.raises(DeadlockError):
            run_job(two_rank_machine, factory)

    def test_unknown_op_rejected(self, two_rank_machine):
        def factory(ctx):
            def program():
                yield "not an op"

            return program()

        with pytest.raises(SimulationError):
            run_job(two_rank_machine, factory)

    def test_job_runs_once(self, two_rank_machine):
        def factory(ctx):
            def program():
                return
                yield

            return program()

        job = Job(two_rank_machine, factory)
        job.run()
        with pytest.raises(SimulationError):
            job.run()


class TestAccounting:
    def test_counters_and_levels(self):
        # 2 nodes x 2 cores; ranks 0,1 on node 0; rank 2 on node 1.
        machine = Machine(ideal(nodes=2, cores_per_node=2), nranks=3)

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(100))
                if ctx.rank == 0:
                    yield from ctx.send(1, 100)  # intra
                    yield from ctx.send(2, 100)  # inter
                elif ctx.rank == 1:
                    yield from ctx.recv(0, 100)
                else:
                    yield from ctx.recv(0, 100)

            return program()

        res = run_job(machine, factory)
        c = res.counters
        assert c.messages == 2
        assert c.intra_messages == 1 and c.inter_messages == 1
        assert c.bytes == 200
        assert c.sent_by_rank[0] == 2
        assert res.flows_completed == 2

    def test_compute_op_advances_clock(self, two_rank_machine):
        def factory(ctx):
            def program():
                yield from ctx.compute(2.5)

            return program()

        res = run_job(two_rank_machine, factory)
        assert res.time == 2.5

    def test_bandwidth_metric(self, two_rank_machine):
        def factory(ctx):
            def program():
                yield from ctx.compute(2.0)

            return program()

        res = run_job(two_rank_machine, factory)
        assert res.bandwidth(GIB) == pytest.approx(GIB / 2.0)

    def test_determinism(self):
        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(10000))
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                for _ in range(5):
                    yield from ctx.sendrecv(right, 10000, left, 10000)

            return program()

        t1 = run_job(make_ideal_machine(8), factory).time
        t2 = run_job(make_ideal_machine(8), factory).time
        assert t1 == t2


class TestContention:
    def test_two_senders_share_receiver_cpu(self):
        """Two concurrent inbound flows bottleneck on the receiver's copy
        engine, taking twice as long as one."""
        n = GIB // 4

        def one(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(n))
                if ctx.rank == 0:
                    yield from ctx.recv(1, n)
                elif ctx.rank == 1:
                    yield from ctx.send(0, n)
                else:
                    return
                    yield

            return program()

        def two(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(n))
                if ctx.rank == 0:
                    r1 = yield from ctx.irecv(1, n)
                    r2 = yield from ctx.irecv(2, n)
                    yield from ctx.waitall([r1, r2])
                else:
                    yield from ctx.send(0, n)

            return program()

        t_one = run_job(make_ideal_machine(3), one).time
        t_two = run_job(make_ideal_machine(3), two).time
        assert t_two == pytest.approx(2 * t_one, rel=0.01)
