"""Miscellaneous runtime coverage: JobResult helpers, buffers wiring,
custom communicators on the DES."""

import pytest

from repro.errors import SimulationError
from repro.machine import Machine, ideal
from repro.mpi import Communicator, Job, RealBuffer
from repro.sim import Trace


class TestJobWiring:
    def test_buffers_list_binds_per_rank(self):
        machine = Machine(ideal(), nranks=2)
        bufs = [RealBuffer(8, fill=6), RealBuffer(8)]

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 8)
                else:
                    yield from ctx.recv(0, 8)

            return program()

        Job(machine, factory, buffers=bufs).run()
        assert (bufs[1].array == 6).all()

    def test_subset_communicator_world(self):
        """A Job over a sub-communicator only spawns its members."""
        machine = Machine(ideal(), nranks=4)
        comm = Communicator([3, 1])
        seen = []

        def factory(ctx):
            def program():
                seen.append((ctx.rank, ctx.global_rank))
                if ctx.rank == 0:
                    yield from ctx.send(1, 4)
                else:
                    status = yield from ctx.recv(0, 4)
                    return status.source

            return program()

        res = Job(machine, factory, comm=comm).run()
        assert sorted(seen) == [(0, 3), (1, 1)]
        assert res.rank_results[1] == 0  # comm-local source
        # Counters speak global ranks.
        assert res.counters.sent_by_rank == {3: 1}

    def test_rank_finish_times_recorded(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                yield from ctx.compute(float(ctx.rank + 1))

            return program()

        res = Job(machine, factory).run()
        assert res.rank_finish_times == [1.0, 2.0]
        assert res.time == 2.0

    def test_trace_flag_controls_recording(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 8)
                else:
                    yield from ctx.recv(0, 8)

            return program()

        silent = Job(Machine(ideal(), nranks=2), factory).run()
        assert len(silent.trace) == 0  # NullTrace by default
        trace = Trace()
        traced = Job(machine, factory, trace=trace).run()
        assert len(traced.trace) > 0

    def test_result_repr(self):
        machine = Machine(ideal(), nranks=1)

        def factory(ctx):
            def program():
                return "x"
                yield

            return program()

        res = Job(machine, factory).run()
        assert "JobResult" in repr(res)
        assert res.rank_results == ["x"]

    def test_bandwidth_zero_time_rejected(self):
        machine = Machine(ideal(), nranks=1)

        def factory(ctx):
            def program():
                return
                yield

            return program()

        res = Job(machine, factory).run()
        with pytest.raises(SimulationError):
            res.bandwidth(100)
