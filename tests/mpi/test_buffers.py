"""Tests for real and phantom message buffers."""

import numpy as np
import pytest

from repro.errors import MpiError, TruncationError
from repro.mpi import RealBuffer, PhantomBuffer, make_buffer


class TestRealBuffer:
    def test_zero_initialised(self):
        buf = RealBuffer(16)
        assert buf.nbytes == 16
        assert not buf.array.any()

    def test_fill(self):
        buf = RealBuffer(4, fill=7)
        assert (buf.array == 7).all()

    def test_read_returns_copy(self):
        buf = RealBuffer(8, fill=1)
        payload = buf.read(2, 4)
        buf.array[:] = 9
        assert (payload == 1).all()  # unaffected by later writes

    def test_write_roundtrip(self):
        src = RealBuffer(8, fill=5)
        dst = RealBuffer(8)
        n = dst.write(4, src.read(0, 4))
        assert n == 4
        assert (dst.array[4:8] == 5).all()
        assert not dst.array[:4].any()

    def test_from_array_views_bytes(self):
        arr = np.arange(4, dtype=np.int32)
        buf = RealBuffer.from_array(arr)
        assert buf.nbytes == 16
        buf.array[0] = 42
        assert arr[0] == 42  # shared storage

    def test_read_span_checked(self):
        buf = RealBuffer(8)
        with pytest.raises(MpiError):
            buf.read(6, 4)
        with pytest.raises(MpiError):
            buf.read(-1, 2)
        with pytest.raises(MpiError):
            buf.read(0, -1)

    def test_write_truncation(self):
        buf = RealBuffer(4)
        with pytest.raises(TruncationError):
            buf.write(2, np.zeros(4, dtype=np.uint8))

    def test_negative_size_rejected(self):
        with pytest.raises(MpiError):
            RealBuffer(-1)

    def test_zero_size_ok(self):
        buf = RealBuffer(0)
        assert buf.read(0, 0).size == 0


class TestPhantomBuffer:
    def test_read_returns_count(self):
        buf = PhantomBuffer(100)
        assert buf.read(10, 30) == 30

    def test_write_accepts_counts_and_arrays(self):
        buf = PhantomBuffer(100)
        assert buf.write(0, 50) == 50
        assert buf.write(0, np.zeros(20, dtype=np.uint8)) == 20

    def test_span_checked(self):
        buf = PhantomBuffer(10)
        with pytest.raises(MpiError):
            buf.read(5, 10)
        with pytest.raises(TruncationError):
            buf.write(5, 10)

    def test_flags(self):
        assert PhantomBuffer(1).phantom
        assert not RealBuffer(1).phantom


class TestFactory:
    def test_selects_type(self):
        assert isinstance(make_buffer(4, real=True), RealBuffer)
        assert isinstance(make_buffer(4, real=False), PhantomBuffer)

    def test_fill_passed_through(self):
        assert (make_buffer(4, real=True, fill=3).array == 3).all()
