"""Shared fixtures for MPI runtime tests."""

import pytest

from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer
from repro.sim import Trace

GIB = 1 << 30


def make_ideal_machine(nranks=2, **overrides):
    """Contention-free machine with 1 GiB/s copy engines and 1 us alpha."""
    spec = ideal(**overrides)
    return Machine(spec, nranks=nranks)


def run_job(machine, factory, **kw):
    kw.setdefault("trace", Trace())
    return Job(machine, factory, **kw).run()


@pytest.fixture
def two_rank_machine():
    return make_ideal_machine(2)


@pytest.fixture
def four_rank_machine():
    return make_ideal_machine(4)
