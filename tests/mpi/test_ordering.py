"""Property tests for MPI ordering semantics on the timed runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Machine, GraphTopology, MachineSpec, ideal, node_key
from repro.mpi import ANY_SOURCE, ANY_TAG, Job, RealBuffer


def run(machine, factory):
    return Job(machine, factory).run()


class TestNonOvertaking:
    @settings(deadline=None, max_examples=25)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=20000), min_size=1, max_size=12),
        eager=st.integers(min_value=0, max_value=8192),
    )
    def test_same_channel_messages_arrive_in_send_order(self, sizes, eager):
        """Messages on one (src, dst, tag) channel are received in send
        order regardless of size mix (eager and rendezvous interleaved)."""
        machine = Machine(ideal(eager_threshold=eager), nranks=2)
        received = []

        def factory(ctx):
            def program():
                buf = RealBuffer(max(sizes) if sizes else 0)
                ctx.attach_buffer(buf)
                if ctx.rank == 0:
                    for n in sizes:
                        yield from ctx.send(1, n, tag=5)
                else:
                    for _ in sizes:
                        status = yield from ctx.recv(0, max(sizes), tag=5)
                        received.append(status.nbytes)

            return program()

        run(machine, factory)
        assert received == sizes

    def test_distinct_tags_can_be_received_out_of_order(self):
        # Eager sends: the sender does not wait, so the receiver is free
        # to pick tags in any order. (With rendezvous this pattern would
        # deadlock — see test below.)
        machine = Machine(ideal(eager_threshold=64), nranks=2)
        order = []

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(64))
                if ctx.rank == 0:
                    yield from ctx.send(1, 8, tag=1)
                    yield from ctx.send(1, 8, tag=2)
                else:
                    s2 = yield from ctx.recv(0, 64, tag=2)
                    order.append(s2.tag)
                    s1 = yield from ctx.recv(0, 64, tag=1)
                    order.append(s1.tag)

            return program()

        run(machine, factory)
        assert order == [2, 1]

    def test_rendezvous_tag_reversal_deadlocks(self):
        """The same pattern under rendezvous is a real deadlock: the
        blocking send of tag 1 waits for a receive the receiver will
        only post after tag 2 — which is never sent."""
        from repro.errors import DeadlockError

        machine = Machine(ideal(eager_threshold=0), nranks=2)

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(64))
                if ctx.rank == 0:
                    yield from ctx.send(1, 8, tag=1)
                    yield from ctx.send(1, 8, tag=2)
                else:
                    yield from ctx.recv(0, 64, tag=2)
                    yield from ctx.recv(0, 64, tag=1)

            return program()

        with pytest.raises(DeadlockError):
            run(machine, factory)

    def test_any_tag_takes_earliest(self):
        machine = Machine(ideal(), nranks=2)
        tags = []

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(64))
                if ctx.rank == 0:
                    for t in (4, 9, 2):
                        yield from ctx.send(1, 8, tag=t)
                else:
                    for _ in range(3):
                        status = yield from ctx.recv(0, 64, tag=ANY_TAG)
                        tags.append(status.tag)

            return program()

        run(machine, factory)
        assert tags == [4, 9, 2]

    @settings(deadline=None, max_examples=15)
    @given(n_senders=st.integers(min_value=1, max_value=6))
    def test_any_source_collects_everyone(self, n_senders):
        machine = Machine(ideal(), nranks=n_senders + 1)
        seen = []

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(16))
                if ctx.rank == 0:
                    for _ in range(n_senders):
                        status = yield from ctx.recv(ANY_SOURCE, 16)
                        seen.append(status.source)
                else:
                    yield from ctx.send(0, 8)

            return program()

        run(machine, factory)
        assert sorted(seen) == list(range(1, n_senders + 1))


class TestGraphTopologyIntegration:
    def _machine(self):
        """Two nodes joined by a single 1 GiB/s duplex pipe."""
        import networkx as nx

        g = nx.DiGraph()
        for a, b in ((0, 1), (1, 0)):
            g.add_edge(node_key(a), node_key(b), capacity=float(1 << 30))
        spec = MachineSpec(
            nodes=2,
            cores_per_node=4,
            topology="crossbar",  # replaced by the explicit instance
            cpu_copy_bw=float(1 << 34),
            mem_bw=float(1 << 40),
            nic_bw=float(1 << 40),
            alpha_intra=1e-6,
            alpha_inter=1e-6,
            hop_latency=0.0,
            send_overhead=0.0,
            recv_overhead=0.0,
            rendezvous_rtt=0.0,
            eager_threshold=0,
        )
        topo = GraphTopology(2, nic_bw=spec.nic_bw, graph=g)
        return Machine(spec, nranks=8, topology=topo)

    def test_pipe_capacity_bounds_cross_traffic(self):
        """Four concurrent node0->node1 flows share the 1 GiB/s pipe."""
        machine = self._machine()
        n = 1 << 28  # 256 MiB each

        def factory(ctx):
            def program():
                if ctx.rank < 4:
                    yield from ctx.send(ctx.rank + 4, n)
                else:
                    yield from ctx.recv(ctx.rank - 4, n)

            return program()

        res = run(machine, factory)
        # 4 x 256MiB through 1 GiB/s => ~1 second.
        assert res.time == pytest.approx(1.0, rel=0.02)

    def test_intra_node_traffic_ignores_pipe(self):
        machine = self._machine()
        n = 1 << 28

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, n)  # same node
                elif ctx.rank == 1:
                    yield from ctx.recv(0, n)

            return program()

        res = run(machine, factory)
        assert res.time < 0.1  # copy engines are 16 GiB/s here
