"""Failure-injection tests: crashing ranks, poisoned programs, corrupt
machine state. The simulator must fail loudly and informatively, never
hang or silently mis-report."""

import pytest

from repro.errors import DeadlockError, MpiError, SimulationError
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer
from repro.sim.process import throw_into


class TestCrashingPrograms:
    def test_exception_in_program_propagates(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                if ctx.rank == 1:
                    raise RuntimeError("rank 1 died")
                yield from ctx.compute(1.0)

            return program()

        with pytest.raises(RuntimeError, match="rank 1 died"):
            Job(machine, factory).run()

    def test_exception_mid_collective_propagates(self):
        from repro.collectives import bcast_scatter_ring_opt

        machine = Machine(ideal(), nranks=8)

        def factory(ctx):
            def program():
                if ctx.rank == 3:
                    yield from ctx.compute(0.0)
                    raise ValueError("injected fault")
                return (yield from bcast_scatter_ring_opt(ctx, 800, 0))

            return program()

        with pytest.raises(ValueError, match="injected fault"):
            Job(machine, factory).run()

    def test_dead_rank_means_deadlock_for_peers(self):
        """A rank that returns early leaves its partners blocked; the
        runtime reports *who* is stuck."""
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    return  # never sends
                yield from ctx.recv(0, 1 << 20)

            return program()

        with pytest.raises(DeadlockError) as exc:
            Job(machine, factory).run()
        assert "rank1" in str(exc.value)

    def test_throw_into_collective_generator(self):
        """The coroutine layer supports injecting exceptions (used to
        model rank aborts); uncaught ones surface at the injection
        point."""
        from repro.collectives import bcast_scatter_ring_opt
        from repro.mpi import Communicator, RankContext
        from repro.sim import step_coroutine

        ctx = RankContext(0, Communicator.world(4), buffer=None)
        gen = bcast_scatter_ring_opt(ctx, 400, 0)
        step_coroutine(gen)  # enter: first yielded op
        with pytest.raises(KeyboardInterrupt):
            throw_into(gen, KeyboardInterrupt())


class TestProgrammingErrors:
    def test_non_generator_program(self):
        machine = Machine(ideal(), nranks=1)
        with pytest.raises(SimulationError, match="yield from"):
            Job(machine, lambda ctx: 42)

    def test_recv_buffer_overrun_rejected_at_write(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                # Receiver's buffer (4B) is smaller than the recv it
                # posts (8B); an 8-byte payload cannot be deposited.
                ctx.attach_buffer(RealBuffer(8 if ctx.rank == 0 else 4))
                if ctx.rank == 0:
                    yield from ctx.send(1, 8)
                else:
                    yield from ctx.recv(0, 8, disp=0)

            return program()

        with pytest.raises(MpiError):
            Job(machine, factory).run()

    def test_mismatched_tags_deadlock_with_context(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send(1, 1 << 20, tag=1)
                else:
                    yield from ctx.recv(0, 1 << 20, tag=2)

            return program()

        with pytest.raises(DeadlockError) as exc:
            Job(machine, factory).run()
        # The report includes the matching-engine state.
        assert "tag=2" in str(exc.value) or "unexpected" in str(exc.value)

    def test_self_message_rejected_by_machine(self):
        machine = Machine(ideal(), nranks=2)

        def factory(ctx):
            def program():
                yield from ctx.send(ctx.rank, 4)

            return program()

        from repro.errors import MachineError

        with pytest.raises(MachineError):
            Job(machine, factory).run()
