"""Protocol-boundary tests: exactly-at-threshold behaviour and protocol
interaction with collective chunk sizes."""

import pytest

from repro.collectives import SHORT_MSG_SIZE
from repro.machine import Machine, ideal
from repro.mpi import Job, RealBuffer
from repro.sim import Trace


def protocols_used(machine, sizes):
    """Run one send per size and return the protocol trace labels."""
    trace = Trace()

    def factory(ctx):
        def program():
            ctx.attach_buffer(RealBuffer(max(sizes)))
            if ctx.rank == 0:
                for n in sizes:
                    yield from ctx.send(1, n)
            else:
                for n in sizes:
                    yield from ctx.recv(0, max(sizes))

        return program()

    Job(machine, factory, trace=trace).run()
    return [r.protocol for r in trace.by_kind("send_launch")]


class TestThresholdBoundary:
    def test_at_threshold_is_eager(self):
        machine = Machine(ideal(eager_threshold=1000), nranks=2)
        assert protocols_used(machine, [999, 1000, 1001]) == [
            "eager",
            "eager",
            "rendezvous",
        ]

    def test_zero_bytes_always_eager(self):
        machine = Machine(ideal(eager_threshold=0), nranks=2)
        assert protocols_used(machine, [0]) == ["eager"]

    def test_threshold_zero_makes_everything_rendezvous(self):
        machine = Machine(ideal(eager_threshold=0), nranks=2)
        assert protocols_used(machine, [1]) == ["rendezvous"]


class TestChunkProtocolInteraction:
    """The ring's wire protocol follows the *chunk* size, not the
    message size — the effect behind Figure 7's strong 12288-byte case."""

    def _ring_protocols(self, P, nbytes, eager_threshold):
        from repro.collectives import bcast_scatter_ring_opt

        spec = ideal(nodes=2, cores_per_node=max(P, 2)).with_(
            eager_threshold=eager_threshold
        )
        machine = Machine(spec, nranks=P)
        trace = Trace()

        def factory(ctx):
            def program():
                return (yield from bcast_scatter_ring_opt(ctx, nbytes, 0))

            return program()

        Job(machine, factory, trace=trace).run()
        return {
            r.protocol
            for r in trace.by_kind("send_launch")
            if r.tag == 2  # ring phase only
        }

    def test_medium_message_rings_eagerly_at_npof2(self):
        # 12288 bytes over 9 ranks: 1366-byte chunks, all eager.
        assert self._ring_protocols(9, SHORT_MSG_SIZE, 8192) == {"eager"}

    def test_long_message_rings_rendezvous(self):
        # 1 MiB over 9 ranks: ~116 KiB chunks, all rendezvous.
        assert self._ring_protocols(9, 1 << 20, 8192) == {"rendezvous"}

    def test_protocol_mix_straddles_chunk_threshold(self):
        # Threshold placed inside the chunk-size range of an uneven
        # split: 9 chunks of 1366B and the clamped tail can mix only if
        # the threshold divides them; with 1365 the big chunks go
        # rendezvous while the short tail chunk stays eager.
        protocols = self._ring_protocols(9, SHORT_MSG_SIZE, 1365)
        assert protocols == {"eager", "rendezvous"}
