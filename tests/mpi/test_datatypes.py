"""Tests for the MPI datatype layer and typed context verbs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MpiError
from repro.machine import Machine, ideal
from repro.mpi import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    Datatype,
    Job,
    contiguous,
    type_size,
    vector,
)


class TestElementary:
    def test_mpi_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert FLOAT.size == 4
        assert DOUBLE.size == 8

    def test_elementary_contiguous(self):
        for dt in (BYTE, INT, DOUBLE):
            assert dt.contiguous and not dt.needs_pack()
            assert dt.extent == dt.size

    def test_payload_and_span(self):
        assert DOUBLE.payload_bytes(10) == 80
        assert DOUBLE.span_bytes(10) == 80
        assert DOUBLE.span_bytes(0) == 0

    def test_negative_count(self):
        with pytest.raises(MpiError):
            DOUBLE.payload_bytes(-1)

    def test_type_size_helper(self):
        assert type_size(INT, 100) == 400


class TestContiguous:
    def test_multiplies(self):
        row = contiguous(10, DOUBLE)
        assert row.size == 80 and row.extent == 80
        assert row.contiguous

    def test_needs_positive_n(self):
        with pytest.raises(MpiError):
            contiguous(0, BYTE)

    def test_nested(self):
        block = contiguous(4, contiguous(10, DOUBLE))
        assert block.size == 320


class TestVector:
    def test_column_slice(self):
        # One column of a 4x5 double matrix: 4 blocks of 1, stride 5.
        col = vector(4, 1, 5, DOUBLE)
        assert col.size == 32  # payload: 4 doubles
        assert col.extent == (3 * 5 + 1) * 8  # span: 16 elements
        assert col.needs_pack()

    def test_dense_vector_is_contiguous(self):
        v = vector(4, 5, 5, DOUBLE)
        assert v.contiguous and v.size == v.extent == 160

    def test_single_block_contiguous(self):
        assert vector(1, 3, 7, INT).contiguous

    def test_stride_validated(self):
        with pytest.raises(MpiError):
            vector(4, 5, 3, DOUBLE)

    @given(
        count=st.integers(min_value=1, max_value=50),
        blocklength=st.integers(min_value=1, max_value=20),
        pad=st.integers(min_value=0, max_value=20),
    )
    def test_property_size_le_extent(self, count, blocklength, pad):
        v = vector(count, blocklength, blocklength + pad, DOUBLE)
        assert v.size <= v.extent
        assert v.size == count * blocklength * 8


class TestTypedVerbs:
    def _run(self, factory):
        return Job(Machine(ideal(), nranks=2), factory).run()

    def test_typed_roundtrip(self):
        received = {}

        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send_typed(1, 100, DOUBLE, tag=3)
                else:
                    status = yield from ctx.recv_typed(0, 100, DOUBLE, tag=3)
                    received["nbytes"] = status.nbytes

            return program()

        self._run(factory)
        assert received["nbytes"] == 800

    def test_pack_cost_charged_for_noncontiguous(self):
        col = vector(1024, 1, 64, DOUBLE)  # strided: needs packing

        def factory(pack_bw):
            def f(ctx):
                def program():
                    if ctx.rank == 0:
                        yield from ctx.send_typed(1, 64, col, pack_bw=pack_bw)
                    else:
                        yield from ctx.recv_typed(0, 64, col, pack_bw=pack_bw)

                return program()

            return f

        fast = self._run(factory(None)).time
        slow = self._run(factory(1 << 20)).time  # 1 MiB/s pack rate
        assert slow > fast

    def test_contiguous_type_never_charged(self):
        def factory(ctx):
            def program():
                if ctx.rank == 0:
                    yield from ctx.send_typed(1, 64, DOUBLE, pack_bw=1.0)
                else:
                    yield from ctx.recv_typed(0, 64, DOUBLE, pack_bw=1.0)

            return program()

        res = self._run(factory)
        assert res.time < 1.0  # a 1 B/s pack rate would take 512 s


class TestValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(MpiError):
            Datatype("bad", -1, 4)

    def test_extent_smaller_than_size_rejected(self):
        with pytest.raises(MpiError):
            Datatype("bad", 8, 4)

    def test_repr(self):
        assert "non-contiguous" in repr(vector(2, 1, 3, BYTE))
        assert "MPI_INT" in repr(INT)
