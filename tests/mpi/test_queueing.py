"""Tests for the queueing-delay congestion extension."""

import pytest

from repro.core import compare_bcast, simulate_bcast
from repro.errors import MachineError
from repro.machine import MachineSpec, hornet, ideal


class TestKnob:
    def test_default_off_changes_nothing(self):
        base = simulate_bcast(hornet(nodes=2), 16, "512KiB").time
        explicit = simulate_bcast(hornet(nodes=2, queueing_kappa=0.0), 16, "512KiB").time
        assert base == explicit

    def test_kappa_slows_everything(self):
        fast = simulate_bcast(hornet(nodes=2), 16, "512KiB").time
        slow = simulate_bcast(
            hornet(nodes=2, queueing_kappa=1.0), 16, "512KiB"
        ).time
        assert slow > fast

    def test_negative_rejected(self):
        with pytest.raises(MachineError):
            MachineSpec(queueing_kappa=-0.1)

    def test_deterministic(self):
        spec = hornet(nodes=2, queueing_kappa=0.7)
        t1 = simulate_bcast(spec, 16, "512KiB").time
        t2 = simulate_bcast(spec, 16, "512KiB").time
        assert t1 == t2

    def test_data_correct_under_queueing(self):
        spec = hornet(nodes=2, queueing_kappa=2.0)
        rec = simulate_bcast(
            spec, 10, 10_000, algorithm="scatter_ring_opt", validate=True
        )
        assert rec.time > 0


class TestMechanism:
    def test_queueing_penalty_scales_with_kappa_and_never_flips_winner(self):
        """Congestion surcharges slow both designs monotonically with
        kappa; the tuned ring stays ahead throughout. (The *relative*
        gain is not monotone in kappa — the ring's step synchronisation
        absorbs uniform penalties — which is itself a finding: modelling
        congestion as a deterministic per-message surcharge is not
        enough to reproduce the paper's 41% peak; the tails are the
        missing part. See EXPERIMENTS.md deviations.)"""
        times = {}
        gains = {}
        for kappa in (0.0, 1.0, 4.0):
            cmp = compare_bcast(hornet(nodes=4, queueing_kappa=kappa), 48, "1MiB")
            times[kappa] = cmp.native.time
            gains[kappa] = cmp.bandwidth_improvement_pct
        assert times[0.0] < times[1.0] < times[4.0]
        assert all(g > 0 for g in gains.values())

    def test_ordering_preserved_under_queueing(self):
        """Variable per-message delays must not let envelopes overtake on
        a channel (the FIFO floor in the transport)."""
        from repro.machine import Machine
        from repro.mpi import Job, RealBuffer

        machine = Machine(
            ideal(eager_threshold=1 << 20).with_(queueing_kappa=8.0), nranks=3
        )
        received = []

        def factory(ctx):
            def program():
                ctx.attach_buffer(RealBuffer(40000))
                if ctx.rank == 0:
                    # Vary sizes wildly so naive per-message delays would
                    # reorder arrivals.
                    for n in (40000, 16, 30000, 8, 20000):
                        yield from ctx.send(1, n, tag=1)
                elif ctx.rank == 1:
                    for _ in range(5):
                        status = yield from ctx.recv(0, 40000, tag=1)
                        received.append(status.nbytes)
                else:
                    return

            return program()

        Job(machine, factory).run()
        assert received == [40000, 16, 30000, 8, 20000]
