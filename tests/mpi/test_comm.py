"""Tests for communicators and rank translation."""

import pytest

from repro.errors import MpiError
from repro.mpi import Communicator


class TestConstruction:
    def test_world(self):
        w = Communicator.world(4)
        assert w.size == 4
        assert w.members == [0, 1, 2, 3]

    def test_world_needs_positive(self):
        with pytest.raises(MpiError):
            Communicator.world(0)

    def test_rejects_empty(self):
        with pytest.raises(MpiError):
            Communicator([])

    def test_rejects_duplicates(self):
        with pytest.raises(MpiError):
            Communicator([0, 1, 1])

    def test_rejects_negative(self):
        with pytest.raises(MpiError):
            Communicator([0, -1])


class TestTranslation:
    def test_local_global_roundtrip(self):
        c = Communicator([5, 2, 9])
        assert c.to_global(0) == 5
        assert c.to_local(9) == 2
        for local in range(c.size):
            assert c.to_local(c.to_global(local)) == local

    def test_contains(self):
        c = Communicator([5, 2])
        assert 5 in c and 3 not in c

    def test_bad_local(self):
        with pytest.raises(MpiError):
            Communicator([1, 2]).to_global(2)

    def test_bad_global(self):
        with pytest.raises(MpiError):
            Communicator([1, 2]).to_local(0)


class TestDupSplitSubset:
    def test_dup_same_members_new_object(self):
        c = Communicator([3, 1])
        d = c.dup()
        assert d.members == c.members and d is not c

    def test_split_by_parity(self):
        w = Communicator.world(6)
        parts = w.split(lambda local: local % 2)
        assert sorted(parts) == [0, 1]
        assert parts[0].members == [0, 2, 4]
        assert parts[1].members == [1, 3, 5]

    def test_split_preserves_relative_order(self):
        c = Communicator([9, 4, 7, 2])
        parts = c.split(lambda local: 0 if local < 2 else 1)
        assert parts[0].members == [9, 4]
        assert parts[1].members == [7, 2]

    def test_split_mimics_smp_node_comms(self):
        """Split world by node like the SMP-aware broadcast does."""
        w = Communicator.world(10)
        per_node = 4
        parts = w.split(lambda local: local // per_node)
        assert parts[0].size == 4 and parts[2].size == 2

    def test_subset(self):
        w = Communicator.world(6)
        s = w.subset([4, 0, 2])
        assert s.members == [4, 0, 2]
        assert s.to_local(4) == 0

    def test_repr_truncates(self):
        text = repr(Communicator.world(20))
        assert "..." in text and "size=20" in text
