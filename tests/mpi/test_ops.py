"""Validation tests for the op descriptors."""

import pytest

from repro.errors import MpiError
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    ComputeOp,
    IrecvOp,
    IsendOp,
    RecvOp,
    SendOp,
    WaitOp,
)


class TestSendOp:
    def test_defaults(self):
        op = SendOp(dst=1, nbytes=10)
        assert op.tag == 0 and op.disp == 0 and op.chunks == ()

    def test_rejects_negative_size(self):
        with pytest.raises(MpiError):
            SendOp(dst=1, nbytes=-1)

    def test_rejects_negative_dst(self):
        with pytest.raises(MpiError):
            SendOp(dst=-1, nbytes=1)

    def test_rejects_negative_tag(self):
        with pytest.raises(MpiError):
            SendOp(dst=1, nbytes=1, tag=-2)

    def test_isend_is_a_send(self):
        assert isinstance(IsendOp(dst=1, nbytes=1), SendOp)

    def test_frozen(self):
        op = SendOp(dst=1, nbytes=1)
        with pytest.raises(Exception):
            op.dst = 2


class TestRecvOp:
    def test_wildcards_allowed(self):
        op = RecvOp(src=ANY_SOURCE, nbytes=4, tag=ANY_TAG)
        assert op.src == -1 and op.tag == -1

    def test_rejects_below_wildcard(self):
        with pytest.raises(MpiError):
            RecvOp(src=-2, nbytes=4)
        with pytest.raises(MpiError):
            RecvOp(src=0, nbytes=4, tag=-2)

    def test_rejects_negative_size(self):
        with pytest.raises(MpiError):
            RecvOp(src=0, nbytes=-4)

    def test_irecv_is_a_recv(self):
        assert isinstance(IrecvOp(src=0, nbytes=1), RecvOp)


class TestOtherOps:
    def test_waitop_normalises_to_tuple(self):
        op = WaitOp(requests=["a", "b"])
        assert op.requests == ("a", "b")

    def test_waitop_empty(self):
        assert WaitOp().requests == ()

    def test_compute_rejects_negative(self):
        with pytest.raises(MpiError):
            ComputeOp(seconds=-0.1)

    def test_compute_zero_ok(self):
        assert ComputeOp(seconds=0.0).seconds == 0.0
