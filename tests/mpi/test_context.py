"""Tests for RankContext: rank translation and verb-to-op lowering.

These drive the context generators directly with the coroutine stepper —
no runtime — to pin down exactly which ops each verb yields and how
communicator-local ranks translate to global ones.
"""

import pytest

from repro.errors import MpiError
from repro.mpi import (
    ANY_SOURCE,
    Communicator,
    IrecvOp,
    IsendOp,
    RankContext,
    RecvOp,
    Request,
    SendOp,
    Status,
    WaitOp,
)
from repro.mpi.buffers import RealBuffer
from repro.sim import step_coroutine


def make_ctx(global_rank=2, members=(2, 5, 7), buffer=None):
    return RankContext(global_rank, Communicator(members), buffer=buffer)


class TestIdentity:
    def test_rank_and_size(self):
        ctx = make_ctx(5)
        assert ctx.rank == 1 and ctx.size == 3

    def test_foreign_rank_rejected(self):
        with pytest.raises(MpiError):
            make_ctx(global_rank=4)

    def test_sub_keeps_buffer(self):
        buf = RealBuffer(4)
        ctx = make_ctx(buffer=buf)
        sub = ctx.sub(Communicator([2, 7]))
        assert sub.buffer is buf
        assert sub.rank == 0 and sub.size == 2

    def test_sub_override_buffer(self):
        ctx = make_ctx(buffer=RealBuffer(4))
        other = RealBuffer(8)
        assert ctx.sub(ctx.comm, buffer=other).buffer is other

    def test_repr(self):
        assert "local=0/3" in repr(make_ctx(2))


class TestVerbLowering:
    def test_send_translates_dst(self):
        ctx = make_ctx(2)
        gen = ctx.send(2, 16, disp=4, tag=9, chunks=(1,))
        op = step_coroutine(gen).value
        assert isinstance(op, SendOp) and not isinstance(op, IsendOp)
        assert op.dst == 7  # local 2 -> global 7
        assert (op.nbytes, op.disp, op.tag, op.chunks) == (16, 4, 9, (1,))

    def test_recv_translates_src_and_localises_status(self):
        ctx = make_ctx(2)
        gen = ctx.recv(1, 16)
        op = step_coroutine(gen).value
        assert isinstance(op, RecvOp) and not isinstance(op, IrecvOp)
        assert op.src == 5
        done = step_coroutine(gen, Status(5, 0, 16, chunks=(3,)))
        assert done.done
        assert done.value.source == 1  # localised back
        assert done.value.chunks == (3,)

    def test_recv_any_source_passthrough(self):
        gen = make_ctx().recv(ANY_SOURCE, 4)
        op = step_coroutine(gen).value
        assert op.src == ANY_SOURCE

    def test_sendrecv_is_isend_irecv_waitall(self):
        ctx = make_ctx(2)
        gen = ctx.sendrecv(1, 8, 2, 8, send_tag=3, recv_tag=4)
        op1 = step_coroutine(gen).value
        assert isinstance(op1, IsendOp) and op1.dst == 5 and op1.tag == 3
        req_s = Request("send", owner=2, peer=5, tag=3, nbytes=8)
        op2 = step_coroutine(gen, req_s).value
        assert isinstance(op2, IrecvOp) and op2.src == 7 and op2.tag == 4
        req_r = Request("recv", owner=2, peer=7, tag=4, nbytes=8)
        op3 = step_coroutine(gen, req_r).value
        assert isinstance(op3, WaitOp)
        assert op3.requests == (req_s, req_r)
        done = step_coroutine(gen, [None, Status(7, 4, 8)])
        assert done.done and done.value.source == 2

    def test_wait_localises(self):
        ctx = make_ctx(2)
        req = Request("recv", owner=2, peer=5, tag=0, nbytes=4)
        gen = ctx.wait(req)
        op = step_coroutine(gen).value
        assert isinstance(op, WaitOp) and op.requests == (req,)
        done = step_coroutine(gen, [Status(5, 0, 4)])
        assert done.value.source == 1

    def test_waitall_handles_send_statuses(self):
        ctx = make_ctx(2)
        gen = ctx.waitall([])
        op = step_coroutine(gen).value
        assert isinstance(op, WaitOp)
        done = step_coroutine(gen, [None, Status(7, 1, 2)])
        assert done.value[0] is None
        assert done.value[1].source == 2

    def test_compute(self):
        gen = make_ctx().compute(1.5)
        op = step_coroutine(gen).value
        assert op.seconds == 1.5

    def test_buffer_attached_to_ops(self):
        buf = RealBuffer(32)
        ctx = make_ctx(buffer=buf)
        op = step_coroutine(ctx.send(1, 8)).value
        assert op.buffer is buf

    def test_out_of_range_local_rank(self):
        with pytest.raises(MpiError):
            step_coroutine(make_ctx().send(3, 1))
