"""Tests for the ping-pong / streaming microbenchmarks and model fitting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench import pingpong, streaming_bandwidth
from repro.core import characterize, fit_alpha_beta
from repro.errors import ConfigurationError
from repro.machine import Machine, hornet, ideal

GIB = 1 << 30


class TestPingPong:
    def test_ideal_machine_latency_exact(self):
        """On the ideal machine a one-way n-byte hop costs alpha + n*beta."""
        spec = ideal(nodes=1, cores_per_node=2)
        (point,) = pingpong(spec, [GIB // 4], iterations=3)
        assert point.latency == pytest.approx(1e-6 + 0.25, rel=1e-6)
        assert point.bandwidth == pytest.approx((GIB // 4) / point.latency)

    def test_latency_monotone_in_size(self):
        points = pingpong(hornet(nodes=2), [4096, 65536, 1048576])
        lats = [p.latency for p in points]
        assert lats == sorted(lats)

    def test_accepts_size_strings(self):
        (point,) = pingpong(ideal(), ["64KiB"])
        assert point.nbytes == 65536

    def test_machine_instance(self):
        machine = Machine(ideal(), nranks=4)
        points = pingpong(machine, [1024], src=1, dst=3)
        assert points[0].latency > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pingpong(ideal(), [1024], iterations=0)
        with pytest.raises(ConfigurationError):
            pingpong(ideal(), [1024], src=1, dst=1)
        with pytest.raises(ConfigurationError):
            pingpong(ideal(), [])
        with pytest.raises(ConfigurationError):
            pingpong("not a machine", [1024])

    def test_latency_us_helper(self):
        (point,) = pingpong(ideal(), [0])
        assert point.latency_us == pytest.approx(point.latency * 1e6)


class TestStreaming:
    def test_streaming_at_least_pingpong_bandwidth(self):
        spec = hornet(nodes=2)
        (pp,) = pingpong(spec, ["1MiB"])
        bw = streaming_bandwidth(spec, "1MiB", window=8)
        assert bw >= pp.bandwidth * 0.8

    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            streaming_bandwidth(ideal(), 1024, window=0)

    def test_intra_node_stream_bound_by_copy_engine(self):
        spec = ideal(nodes=1, cores_per_node=2)
        bw = streaming_bandwidth(spec, GIB // 8, window=4)
        # Single sender copy engine: ~1 GiB/s.
        assert bw == pytest.approx(GIB, rel=0.05)


class TestFitting:
    def test_exact_linear_data(self):
        model = fit_alpha_beta([(0, 1.0), (10, 2.0), (20, 3.0)])
        assert model.alpha == pytest.approx(1.0)
        assert model.beta == pytest.approx(0.1)
        assert model.r_squared == pytest.approx(1.0)
        assert model.predict(30) == pytest.approx(4.0)

    def test_bandwidth_is_inverse_beta(self):
        model = fit_alpha_beta([(0, 0.0), (1 << 30, 1.0)])
        assert model.bandwidth == pytest.approx(1 << 30)

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(ConfigurationError):
            fit_alpha_beta([(5, 1.0)])
        with pytest.raises(ConfigurationError):
            fit_alpha_beta([(5, 1.0), (5, 2.0)])

    def test_describe(self):
        model = fit_alpha_beta([(0, 1e-6), (1 << 30, 1.0 + 1e-6)])
        text = model.describe()
        assert "alpha=1.000us" in text and "R^2" in text

    @given(
        alpha=st.floats(min_value=1e-7, max_value=1e-4),
        beta=st.floats(min_value=1e-12, max_value=1e-8),
    )
    def test_recovers_synthetic_ground_truth(self, alpha, beta):
        sizes = [0, 1024, 65536, 1 << 20]
        model = fit_alpha_beta([(m, alpha + m * beta) for m in sizes])
        assert math.isclose(model.alpha, alpha, rel_tol=1e-6, abs_tol=1e-12)
        assert math.isclose(model.beta, beta, rel_tol=1e-6)


class TestCharacterize:
    def test_ideal_machine_ground_truth(self):
        model = characterize(ideal(nodes=1, cores_per_node=2))
        assert model.alpha == pytest.approx(1e-6, rel=0.01)
        assert model.bandwidth == pytest.approx(GIB, rel=0.01)
        assert model.r_squared > 0.9999

    def test_hornet_inter_node_bandwidth_nic_bound(self):
        spec = hornet(nodes=2)
        model = characterize(spec, src=0, dst=24)  # nodes 0 and 1
        assert model.bandwidth == pytest.approx(spec.nic_bw, rel=0.05)

    def test_hornet_intra_faster_than_inter_latency(self):
        spec = hornet(nodes=2)
        intra = characterize(spec, src=0, dst=1)
        inter = characterize(spec, src=0, dst=24)
        assert intra.alpha < inter.alpha
