"""Pin the experiment axes to the paper's Section V text."""

from repro.bench.figures import (
    FIG6_SIZES,
    FIG7_RANKS,
    FIG7_SIZES,
    FIG8_RANKS,
    FIG8_SIZES,
)
from repro.collectives import LONG_MSG_SIZE, SHORT_MSG_SIZE
from repro.util import is_power_of_two


class TestFig6Axes:
    def test_sizes_are_the_figure_ticks(self):
        # "varying the sizes from 524288 to 30000000 bytes"; the plotted
        # ticks are 2^19 .. 2^25.
        assert FIG6_SIZES == [2**k for k in range(19, 26)]

    def test_all_sizes_are_lmsg(self):
        assert all(s >= LONG_MSG_SIZE for s in FIG6_SIZES)


class TestFig7Axes:
    def test_ranks_from_the_paper(self):
        # "as for example 9, 17, 33, 65 and 129 processes".
        assert FIG7_RANKS == [9, 17, 33, 65, 129]

    def test_all_ranks_npof2(self):
        assert all(not is_power_of_two(p) for p in FIG7_RANKS)

    def test_sizes_from_the_paper(self):
        # "two critical message sizes - 12288 and 524287 bytes ... and
        # long messages (take 1048576 bytes for example)".
        assert FIG7_SIZES == [12288, 524287, 1048576]

    def test_sizes_straddle_the_thresholds(self):
        assert FIG7_SIZES[0] == SHORT_MSG_SIZE  # first medium size
        assert FIG7_SIZES[1] == LONG_MSG_SIZE - 1  # last medium size
        assert FIG7_SIZES[2] >= LONG_MSG_SIZE  # a long message


class TestFig8Axes:
    def test_fixed_129_ranks(self):
        # "we fix the number of processes to 129".
        assert FIG8_RANKS == 129

    def test_range_from_the_paper(self):
        # "increasing message sizes from 12288 ... to 2560000 bytes".
        assert FIG8_SIZES[0] == 12288
        assert FIG8_SIZES[-1] == 2560000
        assert FIG8_SIZES == sorted(FIG8_SIZES)

    def test_spans_medium_and_long(self):
        assert any(s < LONG_MSG_SIZE for s in FIG8_SIZES)
        assert any(s >= LONG_MSG_SIZE for s in FIG8_SIZES)
