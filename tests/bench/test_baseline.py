"""Tests for bench baseline persistence and regression detection."""

import pytest

from repro.bench.baseline import (
    compare_to_baseline,
    load_baseline,
    save_baseline,
)
from repro.errors import ConfigurationError


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "base.json")
        save_baseline(path, {"bw": 1234.5, "msgs": 44}, meta={"machine": "hornet"})
        loaded = load_baseline(path)
        assert loaded == {"bw": 1234.5, "msgs": 44.0}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_baseline(str(tmp_path / "x.json"), {})

    def test_non_numeric_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_baseline(str(tmp_path / "x.json"), {"bad": "fast"})

    def test_format_checked(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": 99, "metrics": {}}')
        with pytest.raises(ConfigurationError):
            load_baseline(str(path))

    def test_atomic_overwrite(self, tmp_path):
        path = str(tmp_path / "base.json")
        save_baseline(path, {"a": 1})
        save_baseline(path, {"a": 2})
        assert load_baseline(path) == {"a": 2.0}


class TestCompare:
    def test_identical_ok_at_zero_tolerance(self):
        diff = compare_to_baseline({"bw": 100.0}, {"bw": 100.0}, rel_tol=0.0)
        assert diff.ok
        assert diff.matched == {"bw": 0.0}

    def test_improvement_is_not_a_regression(self):
        diff = compare_to_baseline({"bw": 100.0}, {"bw": 150.0})
        assert diff.ok

    def test_regression_detected(self):
        diff = compare_to_baseline({"bw": 100.0}, {"bw": 90.0}, rel_tol=0.05)
        assert not diff.ok
        assert diff.regressions == {"bw": pytest.approx(-0.1)}
        assert "REGRESSION bw" in diff.describe()

    def test_tolerance_allows_slack(self):
        diff = compare_to_baseline({"bw": 100.0}, {"bw": 96.0}, rel_tol=0.05)
        assert diff.ok

    def test_lower_is_better_mode(self):
        # Times: going up is bad.
        diff = compare_to_baseline(
            {"t": 1.0}, {"t": 1.2}, rel_tol=0.1, higher_is_better=False
        )
        assert not diff.ok
        diff = compare_to_baseline(
            {"t": 1.0}, {"t": 0.8}, rel_tol=0.1, higher_is_better=False
        )
        assert diff.ok

    def test_missing_and_new(self):
        diff = compare_to_baseline({"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0})
        assert diff.missing == ["a"]
        assert diff.new == ["c"]
        assert not diff.ok
        assert "MISSING a" in diff.describe() and "NEW c" in diff.describe()

    def test_zero_baseline_value(self):
        assert compare_to_baseline({"x": 0.0}, {"x": 0.0}).ok
        assert not compare_to_baseline({"x": 0.0}, {"x": -1.0}).ok

    def test_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            compare_to_baseline({}, {}, rel_tol=-1)


class TestEndToEnd:
    def test_simulator_metrics_reproduce_bitwise(self, tmp_path):
        """The deterministic simulator's own numbers survive a baseline
        round trip at zero tolerance."""
        from repro.core import compare_bcast
        from repro.machine import hornet

        def measure():
            cmp = compare_bcast(hornet(nodes=2), 16, "256KiB")
            return {
                "native_time": cmp.native.time,
                "opt_time": cmp.opt.time,
                "messages_saved": cmp.transfers_saved,
            }

        path = str(tmp_path / "sim.json")
        save_baseline(path, measure())
        diff = compare_to_baseline(
            load_baseline(path), measure(), rel_tol=0.0, higher_is_better=False
        )
        assert diff.ok, diff.describe()
