"""Smoke tests for the benchmark harness (fast axes, small grids)."""

import pytest

from repro.bench import (
    NATIVE,
    OPT,
    fig6,
    fig7,
    fig8,
    get_experiment,
    render_bandwidth_table,
    render_plot,
    render_speedup_table,
)
from repro.bench.figures import Experiment, fast_mode
from repro.core import Sweep
from repro.machine import hornet


def tiny_experiment():
    spec = hornet(nodes=2)
    sizes = [2**16, 2**18]
    sweep = Sweep(spec, sizes=sizes, ranks=[8], algorithms=[NATIVE, OPT])
    return Experiment(
        exp_id="tiny",
        title="tiny experiment",
        spec=spec,
        sweep=sweep,
        ranks_axis=[8],
        sizes_axis=sizes,
        paper_claim="opt >= native",
    )


class TestDefinitions:
    def test_fig6_variants(self):
        for sub, nranks in (("a", 16), ("b", 64), ("c", 256)):
            exp = fig6(sub)
            assert exp.ranks_axis == [nranks]
            assert exp.exp_id == f"fig6{sub}"
            assert exp.spec.topology == "dragonfly"

    def test_fig6_sizes_match_paper_axis(self):
        assert fig6("a").sizes_axis[0] >= 2**19  # lmsg only

    def test_fig7_axes(self):
        exp = fig7()
        assert 12288 in exp.sizes_axis
        assert set(exp.ranks_axis) <= {9, 17, 33, 65, 129}
        # All npof2 (the case the paper targets).
        assert all(p & (p - 1) for p in exp.ranks_axis)

    def test_fig8_axes(self):
        exp = fig8()
        assert exp.ranks_axis == [129]
        assert exp.sizes_axis[0] == 12288

    def test_fast_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        assert fast_mode()
        exp = fig7()
        assert max(exp.ranks_axis) <= 33
        monkeypatch.setenv("REPRO_BENCH_FAST", "0")
        assert not fast_mode()


class TestRunnerAndRendering:
    def test_get_experiment_caches(self):
        calls = []

        def factory():
            calls.append(1)
            return tiny_experiment()

        e1 = get_experiment("tiny-test", factory)
        e2 = get_experiment("tiny-test", factory)
        assert e1 is e2
        assert calls == [1]

    def test_bandwidth_table_renders(self):
        exp = tiny_experiment()
        exp.run()
        text = render_bandwidth_table(exp, 8)
        assert "64KiB" in text and "improvement" in text
        assert "tiny experiment" in text

    def test_speedup_table_renders(self):
        exp = tiny_experiment()
        exp.run()
        text = render_speedup_table(exp)
        assert "np=8" in text

    def test_plot_renders(self):
        exp = tiny_experiment()
        exp.run()
        text = render_plot(exp, 8)
        assert "o=native" in text and "x=opt" in text

    def test_comparisons_cover_grid(self):
        exp = tiny_experiment()
        exp.run()
        cmps = exp.comparisons()
        assert len(cmps) == 2
        for c in cmps:
            assert c.opt.time <= c.native.time * (1 + 1e-9)
