"""Run artifacts: durable, content-addressed, re-executable — and the
``repro audit`` gate that catches both tampering and result rot."""

import dataclasses
import json

import pytest

from repro.__main__ import main
from repro.artifacts import (
    ArtifactStore,
    RunArtifact,
    artifact_digest,
    audit_artifact,
    default_store_dir,
    diff_payload,
    scrub,
)
from repro.core.executor import SweepExecutor
from repro.core.sweep import SweepPoint
from repro.errors import ArtifactError
from repro.machine import ideal
from repro.service import protocol


def _spec():
    return ideal(nodes=2, cores_per_node=4)


def _sweep_artifact():
    """A real one-point sweep artifact (cheap: P=4, 4KiB on ideal)."""
    points = [SweepPoint("scatter_ring_opt", 4, 4096)]
    records = SweepExecutor(jobs=1, cache=None, serve=False).run(
        _spec(), points
    )
    config = {
        "spec": protocol.encode_spec(_spec()),
        "points": protocol.encode_points(points),
        "root": 0,
        "placement": "blocked",
        "faults": None,
        "reliable": None,
    }
    return RunArtifact.create(
        "sweep", config, [dataclasses.asdict(r) for r in records]
    )


@pytest.fixture(scope="module")
def sweep_artifact():
    return _sweep_artifact()


class TestStore:
    def test_round_trip(self, sweep_artifact, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(sweep_artifact)
        assert path.name == f"{sweep_artifact.name}.json"
        loaded = store.load(sweep_artifact.name)
        assert loaded == sweep_artifact
        assert store.load(path) == sweep_artifact  # by path too

    def test_same_recipe_overwrites_not_accumulates(
        self, sweep_artifact, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        store.save(sweep_artifact)
        store.save(sweep_artifact)
        assert len(store) == 1

    def test_missing_ref_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact found"):
            ArtifactStore(tmp_path).load("sweep-doesnotexist")

    def test_malformed_payload_raises_artifact_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "sweep"}))  # missing fields
        with pytest.raises(ArtifactError, match="malformed"):
            ArtifactStore(tmp_path).load(path)

    def test_env_override_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "mine"))
        assert default_store_dir() == tmp_path / "mine"

    def test_volatile_keys_do_not_change_digest(self):
        rec = {"time": 1.0, "solver_time_s": 0.5}
        assert scrub(rec) == {"time": 1.0}
        assert artifact_digest(rec) == artifact_digest(
            {"time": 1.0, "solver_time_s": 99.0}
        )


class TestAudit:
    def test_fresh_artifact_reproduces(self, sweep_artifact):
        result = audit_artifact(sweep_artifact)
        assert result.ok
        assert result.reexecuted
        assert "bit-for-bit" in result.describe()

    def test_integrity_tamper_fails_without_reexecution(
        self, sweep_artifact, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        path = store.save(sweep_artifact)
        data = json.loads(path.read_text())
        data["records"][0]["time"] = 1.0
        path.write_text(json.dumps(data))
        result = audit_artifact(sweep_artifact.name, store=store)
        assert not result.ok
        assert not result.reexecuted  # digest mismatch short-circuits
        assert any("records were altered" in p for p in result.integrity)

    def test_coherent_tamper_caught_by_reexecution(
        self, sweep_artifact, tmp_path
    ):
        # An attacker who also fixes up the digests defeats the
        # integrity check — only re-execution catches that.
        tampered_records = json.loads(json.dumps(sweep_artifact.records))
        tampered_records[0]["time"] = 1.0
        forged = RunArtifact.create(
            sweep_artifact.kind, sweep_artifact.config, tampered_records
        )
        assert not forged.integrity_problems()
        result = audit_artifact(forged)
        assert not result.ok
        assert result.reexecuted
        assert any(".time" in m for m in result.mismatches)

    def test_unknown_kind_raises(self):
        bad = RunArtifact.create("nonsense", {}, [])
        with pytest.raises(ArtifactError, match="nonsense"):
            audit_artifact(bad)

    def test_diff_payload_names_paths(self):
        out = diff_payload(
            [{"a": 1, "b": [1, 2]}], [{"a": 1, "b": [1, 3]}]
        )
        assert out == ["$[0].b[1]: stored 2 vs re-executed 3"]


class TestCli:
    def test_audit_exit_codes(self, sweep_artifact, tmp_path, capsys):
        store = ArtifactStore(tmp_path)
        path = store.save(sweep_artifact)
        assert main(["audit", "--dir", str(tmp_path)]) == 0
        assert "1/1 artifact(s) reproduced" in capsys.readouterr().out
        data = json.loads(path.read_text())
        data["records"][0]["time"] = 1.0
        path.write_text(json.dumps(data))
        assert main(["audit", sweep_artifact.name, "--dir", str(tmp_path)]) == 1
        assert main(["audit", "nope", "--dir", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_audit_empty_store_is_usage_error(self, tmp_path, capsys):
        assert main(["audit", "--dir", str(tmp_path)]) == 2
        assert "no artifacts" in capsys.readouterr().err

    def test_sweep_artifact_flag_records_and_audits(self, tmp_path, capsys):
        rc = main(
            [
                "sweep", "--nranks", "4", "--nodes", "2",
                "--sizes", "4KiB", "--no-cache",
                "--artifact", str(tmp_path / "arts"),
            ]
        )
        assert rc == 0
        assert "artifact:" in capsys.readouterr().out
        assert main(["audit", "--dir", str(tmp_path / "arts"), "--json"]) == 0
        results = json.loads(capsys.readouterr().out)
        assert results[0]["ok"] is True
        assert results[0]["kind"] == "sweep"
