"""CLI surface of the simulation service: flags, exit codes, routing."""

import dataclasses
import json
import threading

import pytest

from repro.__main__ import build_parser, main
from repro.core.diskcache import DiskCache
from repro.core.report import RunRecord
from repro.service import SimulationServer


@pytest.fixture()
def server(tmp_path):
    srv = SimulationServer(jobs=1, state_file=tmp_path / "service.json")
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.request_shutdown()
    thread.join(timeout=30)


class TestParser:
    def test_serve_flag_forms(self):
        assert build_parser().parse_args(["sweep"]).serve is None
        assert build_parser().parse_args(["sweep", "--serve"]).serve == "auto"
        assert (
            build_parser().parse_args(["sweep", "--serve", "h:1"]).serve == "h:1"
        )

    def test_serve_flag_on_gates(self):
        for cmd in ("verify", "cost", "chaos", "replay", "figure"):
            assert build_parser().parse_args([cmd, "--serve"]).serve == "auto"

    def test_serve_subcommand_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 0 and args.jobs == 0
        assert not args.status and not args.stop

    def test_cache_migrate_flag(self):
        assert build_parser().parse_args(["cache", "--migrate"]).migrate


class TestExitCodes:
    def test_explicit_dead_server_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep", "--nranks", "8", "--nodes", "2",
                "--sizes", "64KiB", "--serve", "127.0.0.1:1",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "no simulation server reachable at 127.0.0.1:1" in err
        assert "python -m repro serve" in err  # actionable hint

    def test_auto_discovery_falls_back_to_in_process(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))  # no state file
        rc = main(
            [
                "sweep", "--nranks", "8", "--nodes", "2",
                "--sizes", "64KiB", "--serve",
            ]
        )
        assert rc == 0
        assert "improvement" in capsys.readouterr().out

    def test_status_without_state_file_exits_1(self, capsys, tmp_path):
        rc = main(["serve", "--status", "--state-file", str(tmp_path / "x.json")])
        assert rc == 1
        assert "no server state file" in capsys.readouterr().err

    def test_stop_without_state_file_exits_1(self, tmp_path):
        assert main(["serve", "--stop", "--state-file", str(tmp_path / "x.json")]) == 1

    def test_status_with_stale_state_exits_1(self, capsys, tmp_path):
        state = tmp_path / "service.json"
        state.write_text(json.dumps({"host": "127.0.0.1", "port": 1, "pid": 0}))
        rc = main(["serve", "--status", "--state-file", str(state)])
        assert rc == 1
        assert "no server answered" in capsys.readouterr().err


class TestRouting:
    def test_sweep_through_live_server(self, capsys, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(
            [
                "sweep", "--nranks", "8", "--sizes", "4KiB,64KiB",
                "--no-cache", "--serve", str(tmp_path / "service.json"),
            ]
        )
        assert rc == 0
        assert "improvement" in capsys.readouterr().out
        # The points really ran server-side.
        from repro.service import ServiceClient

        assert ServiceClient(server.host, server.port).stats()["points"] == 4

    def test_verify_grid_through_live_server(self, capsys, server, tmp_path):
        rc = main(
            ["verify", "--nranks", "4", "--serve", str(tmp_path / "service.json")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified" in out

    def test_status_and_stop_against_live_server(self, capsys, server, tmp_path):
        state = str(tmp_path / "service.json")
        assert main(["serve", "--status", "--state-file", state]) == 0
        out = capsys.readouterr().out
        assert f"server at {server.host}:{server.port}" in out
        assert main(["serve", "--stop", "--state-file", state]) == 0


class TestCacheCommand:
    def _legacy_record(self):
        return RunRecord(
            algorithm="a", nranks=4, nbytes=1024, root=0, time=1e-5,
            messages=3, bytes_on_wire=2048, intra_messages=3, inter_messages=0,
        )

    def test_cache_reports_shards(self, capsys, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("ab" + "0" * 62, self._legacy_record())
        rc = main(["cache", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 record(s) in 1 shard(s)" in out

    def test_cache_migrate(self, capsys, tmp_path):
        line = json.dumps(
            {
                "key": "cd" + "0" * 62,
                "record": dataclasses.asdict(self._legacy_record()),
            }
        )
        (tmp_path / "sweep-records.jsonl").write_text(line + "\n")
        rc = main(["cache", "--cache-dir", str(tmp_path), "--migrate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "migrated 1 legacy record(s)" in out
        assert not (tmp_path / "sweep-records.jsonl").exists()


class TestBenchReportFlagging:
    def _write_bench(self, tmp_path, **fields):
        data = {
            "benchmark": "sweep harness",
            "date": "2026-08-08",
            **fields,
        }
        (tmp_path / "BENCH_x.json").write_text(json.dumps(data))

    def test_single_cpu_speedup_flagged(self, capsys, tmp_path):
        self._write_bench(tmp_path, cpu_count=1, speedup_jobs4_vs_serial=0.92)
        assert main(["bench-report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out and "1-CPU host" in out
        assert "speedup_jobs4_vs_serial" in out

    def test_multi_cpu_not_flagged(self, capsys, tmp_path):
        self._write_bench(tmp_path, cpu_count=8, speedup_jobs4_vs_serial=3.4)
        assert main(["bench-report", "--dir", str(tmp_path)]) == 0
        assert "WARNING" not in capsys.readouterr().out

    def test_no_speedup_columns_not_flagged(self, capsys, tmp_path):
        self._write_bench(tmp_path, cpu_count=1, warm_vs_cold=3.2)
        assert main(["bench-report", "--dir", str(tmp_path)]) == 0
        assert "WARNING" not in capsys.readouterr().out

    def test_algorithmic_speedup_not_flagged(self, capsys, tmp_path):
        # Solver/replay speedups are single-process algorithmic wins —
        # valid on any core count.
        self._write_bench(tmp_path, cpu_count=1, p65_speedup=6.89)
        assert main(["bench-report", "--dir", str(tmp_path)]) == 0
        assert "WARNING" not in capsys.readouterr().out
