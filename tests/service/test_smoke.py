"""CI smoke test: a real ``repro serve`` subprocess, end to end.

The other service tests drive an in-process server; this one exercises
the shipped entry points exactly as a user would — ``python -m repro
serve`` as a child process, discovery through the state file, a mini
Figure-6(b) grid through the client, byte-equality against the serial
path, and a clean ``--stop`` shutdown. ``REPRO_BENCH_FAST`` trims the
grid for quick CI runs.
"""

import dataclasses
import os
import subprocess
import sys
import time

import pytest

from repro.bench.figures import fast_mode, fig6
from repro.core.api import simulate_bcast
from repro.core.executor import SweepExecutor
from repro.core.sweep import SweepPoint
from repro.service.protocol import read_state


def mini_fig6b_points():
    """A corner of the Figure 6(b) grid: np=64, smallest+largest size."""
    exp = fig6("b")
    nranks = exp.ranks_axis[0]
    sizes = exp.sizes_axis
    picked = [sizes[0]] if fast_mode() else [sizes[0], sizes[-1]]
    return exp.spec, [
        SweepPoint(a, nranks, n)
        for a in exp.sweep.algorithms
        for n in picked
    ]


def det_fields(rec):
    d = dataclasses.asdict(rec)
    d.pop("solver_time_s")
    return d


@pytest.mark.slow
def test_serve_subprocess_smoke(tmp_path):
    state_file = tmp_path / "service.json"
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--jobs", "1",
            "--no-cache",
            "--state-file", str(state_file),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.time() + 60
        while read_state(state_file) is None:
            assert proc.poll() is None, proc.stdout.read()
            assert time.time() < deadline, "server never advertised itself"
            time.sleep(0.2)

        spec, points = mini_fig6b_points()
        routed = SweepExecutor(serve=str(state_file)).run(spec, points)
        for point, rec in zip(points, routed):
            serial = simulate_bcast(
                spec,
                nranks=point.nranks,
                nbytes=point.nbytes,
                algorithm=point.algorithm,
            )
            assert rec == serial
            assert det_fields(rec) == det_fields(serial)

        stop = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--stop", "--state-file", str(state_file),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert stop.returncode == 0, stop.stderr
        assert proc.wait(timeout=60) == 0
        assert not state_file.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
