"""Fault-tolerance tests: the pool survives worker kills, quarantines
poison points with a typed error naming the point, honours job
deadlines, and the executor's results stay byte-identical through it
all."""

import os
import signal
import time

import pytest

from repro.core import Sweep, SweepPoint
from repro.core.executor import CHAOS_CRASH_ENV, SweepExecutor
from repro.errors import (
    PoisonPointError,
    ServiceError,
    SweepExecutionError,
)
from repro.machine import ideal
from repro.service.resilience import ResilientPool


# -- picklable worker entry points (spawned processes import this file) --
def _double_batch(tasks):
    return [("ok", t * 2) for t in tasks]


def _crash_latch_batch(tasks):
    """Each task is ``(latch_path, value)``; a latch file holding a
    positive integer makes the worker decrement it and SIGKILL itself —
    the same latch protocol the executor's chaos hook uses."""
    for latch_path, _ in tasks:
        try:
            remaining = int(open(latch_path).read().strip())
        except (OSError, ValueError):
            remaining = 0
        if remaining > 0:
            with open(latch_path, "w") as fh:
                fh.write(str(remaining - 1))
            os.kill(os.getpid(), signal.SIGKILL)
    return [("ok", value) for _, value in tasks]


def _sleep_batch(tasks):
    time.sleep(60)
    return [("ok", t) for t in tasks]


def _pid():
    return os.getpid()


def _run_all(pool, fn, tasks, **kw):
    batches = [[i] for i in tasks]
    return dict(pool.run(fn, batches, tasks, **kw))


@pytest.fixture
def pool():
    p = ResilientPool(jobs=2, backoff_base_s=0.0)
    yield p
    p.shutdown(wait=False)


class TestResilientPool:
    def test_all_ok(self, pool):
        tasks = {i: i for i in range(6)}
        out = _run_all(pool, _double_batch, tasks)
        assert out == {i: ("ok", i * 2) for i in range(6)}
        assert pool.respawns_total == 0

    def test_worker_kill_recovers_and_completes(self, pool, tmp_path):
        latch = tmp_path / "latch"
        latch.write_text("1")
        tasks = {i: (str(latch), i) for i in range(5)}
        out = _run_all(pool, _crash_latch_batch, tasks)
        # One worker died mid-run, yet every point completed with its
        # correct value and the pool recorded the respawn.
        assert out == {i: ("ok", i) for i in range(5)}
        assert pool.respawns_total >= 1

    def test_poison_point_quarantined_with_typed_outcome(self, pool, tmp_path):
        latch = tmp_path / "poison"
        latch.write_text("99")  # crashes on every attempt
        tasks = {0: (str(tmp_path / "no-latch"), 0), 1: (str(latch), 1)}
        out = _run_all(
            pool, _crash_latch_batch, tasks, poison_key=lambda i: f"point-{i}"
        )
        assert out[0] == ("ok", 0)
        kind, type_name, message, _tb = out[1]
        assert (kind, type_name) == ("err", "PoisonPointError")
        assert "quarantined" in message
        # Quarantine persists: the next job refuses the point instantly,
        # without letting it kill another worker.
        crashes_before = int(latch.read_text())
        again = _run_all(
            pool, _crash_latch_batch, tasks, poison_key=lambda i: f"point-{i}"
        )
        assert again[1][1] == "PoisonPointError"
        assert int(latch.read_text()) == crashes_before

    def test_deadline_yields_typed_outcomes_for_unfinished(self, pool):
        tasks = {i: i for i in range(3)}
        start = time.monotonic()
        out = _run_all(pool, _sleep_batch, tasks, deadline_s=0.5)
        assert time.monotonic() - start < 30
        assert set(out) == {0, 1, 2}
        for kind, type_name, message, _tb in out.values():
            assert (kind, type_name) == ("err", "ServiceDeadlineError")
            assert "deadline" in message

    def test_submit_once_survives_a_worker_kill(self, pool):
        assert pool.submit_once(_pid) > 0
        for victim in pool.worker_pids():
            os.kill(victim, signal.SIGKILL)
        assert pool.submit_once(_pid) > 0

    def test_submit_once_raises_service_error_past_budget(self, tmp_path):
        pool = ResilientPool(jobs=1, backoff_base_s=0.0)
        try:
            latch = tmp_path / "latch"
            latch.write_text("99")
            with pytest.raises(ServiceError, match="worker pool died"):
                pool.submit_once(
                    _crash_latch_batch, [(str(latch), 0)], retries=2
                )
        finally:
            pool.shutdown(wait=False)


def _spec():
    return ideal(nodes=4, cores_per_node=8)


def _sweep():
    return Sweep(
        _spec(),
        sizes=["4KiB", "64KiB"],
        ranks=[4, 8],
        algorithms=["scatter_ring_native", "scatter_ring_opt"],
    )


class TestExecutorUnderChaos:
    def test_parallel_records_byte_identical_after_worker_kill(
        self, tmp_path, monkeypatch
    ):
        reference = _sweep().run(jobs=1)
        victim = SweepPoint("scatter_ring_opt", 8, 65536)
        latch_dir = tmp_path / "latches"
        latch_dir.mkdir()
        (latch_dir / f"{victim.algorithm}-{victim.nranks}-{victim.nbytes}").write_text("1")
        monkeypatch.setenv(CHAOS_CRASH_ENV, str(latch_dir))
        records = _sweep().run(jobs=2)
        # RunRecord equality ignores only wall-clock telemetry: this is
        # the byte-identity bar the crash recovery must clear.
        assert records == reference

    def test_poison_point_raises_typed_error_naming_the_point(
        self, tmp_path, monkeypatch
    ):
        victim = SweepPoint("scatter_ring_opt", 8, 65536)
        latch_dir = tmp_path / "latches"
        latch_dir.mkdir()
        (latch_dir / f"{victim.algorithm}-{victim.nranks}-{victim.nbytes}").write_text("99")
        monkeypatch.setenv(CHAOS_CRASH_ENV, str(latch_dir))
        executor = SweepExecutor(jobs=2, cache=None, serve=False)
        with pytest.raises(PoisonPointError) as excinfo:
            executor.run(_spec(), _sweep().points())
        message = str(excinfo.value)
        assert victim.algorithm in message
        assert str(victim.nbytes) in message
        assert isinstance(excinfo.value, SweepExecutionError)
