"""End-to-end tests for the persistent simulation service.

A real :class:`SimulationServer` (TCP listener + one-process worker
pool) runs on a background thread; clients talk to it over the loopback
socket exactly as the CLI does. The core guarantee under test: records
that travelled through the service are byte-identical to records from
the plain serial path.
"""

import dataclasses
import threading

import pytest

from repro.core.api import simulate_bcast
from repro.core.diskcache import DiskCache, cache_key
from repro.core.executor import SweepExecutor
from repro.core.sweep import Sweep, SweepPoint
from repro.errors import (
    ServiceError,
    ServiceJobError,
    ServiceUnavailableError,
    SweepExecutionError,
)
from repro.machine import hornet
from repro.service import ServiceClient, SimulationServer
from repro.service.client import connect_or_none, resolve_address


def det_fields(rec):
    """Every deterministic record field (all but wall-clock time)."""
    d = dataclasses.asdict(rec)
    d.pop("solver_time_s")
    return d


def small_points():
    return [
        SweepPoint(a, 8, n)
        for a in ("scatter_ring_native", "scatter_ring_opt")
        for n in (4096, 65536)
    ]


@pytest.fixture()
def server(tmp_path):
    srv = SimulationServer(jobs=1, state_file=tmp_path / "service.json")
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture()
def client(server):
    return ServiceClient(server.host, server.port)


class TestLiveness:
    def test_ping(self, client, server):
        pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["workers"] == server.jobs

    def test_stats_counts_jobs(self, client):
        spec = hornet(nodes=4)
        list(client.sweep(spec, small_points()[:1], cache=False))
        stats = client.stats()
        assert stats["jobs"] == 1 and stats["points"] == 1
        assert stats["cache"] is None  # server started without a cache

    def test_state_file_advertises_address(self, server, tmp_path):
        from repro.service.protocol import read_state

        assert read_state(tmp_path / "service.json") == (server.host, server.port)


class TestSweepEquality:
    def test_records_byte_identical_to_serial(self, client):
        spec = hornet(nodes=4)
        points = small_points()
        via_service = dict(client.sweep(spec, points, cache=False))
        for i, point in enumerate(points):
            serial = simulate_bcast(
                spec,
                nranks=point.nranks,
                nbytes=point.nbytes,
                algorithm=point.algorithm,
            )
            status, rec = via_service[i]
            assert status == "ok"
            assert rec == serial
            assert det_fields(rec) == det_fields(serial)

    def test_error_streamed_with_index(self, client):
        spec = hornet(nodes=4)
        points = [SweepPoint("scatter_ring_opt", 8, 4096), SweepPoint("bogus", 8, 4096)]
        outcomes = dict(client.sweep(spec, points, cache=False))
        assert outcomes[0][0] == "ok"
        status, error_type, message, tb = outcomes[1]
        assert status == "err"
        assert error_type == "CollectiveError"
        assert "bogus" in message
        assert "Traceback" in tb

    def test_server_side_cache(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        srv = SimulationServer(
            jobs=1, cache=cache, state_file=tmp_path / "service.json"
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(srv.host, srv.port)
            spec = hornet(nodes=4)
            points = small_points()[:2]
            first = dict(client.sweep(spec, points))
            second = dict(client.sweep(spec, points))
            assert {i: o[1] for i, o in first.items()} == {
                i: o[1] for i, o in second.items()
            }
            stats = client.stats()["cache"]
            assert stats["stores"] == 2 and stats["hits"] == 2
            # The cache is bypassable per request.
            list(client.sweep(spec, points, cache=False))
            assert client.stats()["cache"]["hits"] == 2
        finally:
            srv.request_shutdown()
            thread.join(timeout=30)

    def test_gate_verify(self, client):
        reply = client.gate("verify", {"ranks": [4]})
        assert reply["ok"] is True
        assert "verified" in reply["text"]
        assert isinstance(reply["report"], list)

    def test_gate_unknown(self, client):
        reply = client.gate("nonsense", {})
        assert reply["ok"] is False


class TestExecutorRouting:
    def test_executor_service_matches_serial(self, server, tmp_path):
        spec = hornet(nodes=4)
        points = small_points()
        routed = SweepExecutor(serve=f"{server.host}:{server.port}").run(spec, points)
        serial = SweepExecutor(serve=False).run(spec, points)
        assert routed == serial
        assert [det_fields(r) for r in routed] == [det_fields(r) for r in serial]

    def test_sweep_run_serve_kwarg(self, server):
        def sweep():
            return Sweep(
                hornet(nodes=4),
                sizes=["4KiB", "64KiB"],
                ranks=[8],
                algorithms=["scatter_ring_native", "scatter_ring_opt"],
            )

        assert sweep().run(serve=f"{server.host}:{server.port}") == sweep().run(
            serve=False
        )

    def test_job_failure_carries_point(self, server):
        bad = SweepPoint("no_such_algorithm", 8, 1024)
        executor = SweepExecutor(serve=f"{server.host}:{server.port}")
        with pytest.raises(ServiceJobError) as err:
            executor.run(hornet(nodes=4), [bad])
        assert err.value.point == bad
        assert err.value.error_type == "CollectiveError"
        assert err.value.worker_traceback
        # Drivers catching the generic executor failure still work.
        assert isinstance(err.value, SweepExecutionError)
        assert isinstance(err.value, ServiceError)

    def test_client_side_cache_pass_skips_server(self, server, tmp_path):
        spec = hornet(nodes=4)
        points = small_points()[:2]
        cache = DiskCache(tmp_path / "client-cache")
        for point in points:
            key = cache_key(spec, point)
            cache.put(key, simulate_bcast(
                spec, nranks=point.nranks, nbytes=point.nbytes,
                algorithm=point.algorithm,
            ))
        before = ServiceClient(server.host, server.port).stats()["points"]
        records = SweepExecutor(
            cache=cache, serve=f"{server.host}:{server.port}"
        ).run(spec, points)
        assert len(records) == len(points)
        after = ServiceClient(server.host, server.port).stats()["points"]
        assert after == before  # fully warm: nothing was submitted


class TestDiscovery:
    def test_env_off_values(self, monkeypatch):
        for value in ("", "0", "off", "no", "false"):
            monkeypatch.setenv("REPRO_SERVE", value)
            assert resolve_address(None) is None

    def test_serve_false_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE", "127.0.0.1:1")
        assert resolve_address(False) is None

    def test_auto_without_state_file(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_address(True) is None
        assert resolve_address("auto") is None
        monkeypatch.setenv("REPRO_SERVE", "auto")
        assert resolve_address(None) is None

    def test_host_port_parse(self):
        resolved = resolve_address("127.0.0.1:4242")
        assert (resolved.host, resolved.port) == ("127.0.0.1", 4242)
        assert resolved.explicit

    def test_env_address_is_not_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE", "127.0.0.1:4242")
        resolved = resolve_address(None)
        assert (resolved.host, resolved.port) == ("127.0.0.1", 4242)
        assert not resolved.explicit

    def test_state_file_path_resolution(self, server, tmp_path):
        resolved = resolve_address(str(tmp_path / "service.json"))
        assert (resolved.host, resolved.port) == (server.host, server.port)

    def test_explicit_missing_state_file_raises(self, tmp_path):
        with pytest.raises(ServiceUnavailableError):
            resolve_address(str(tmp_path / "nope.json"))

    def test_connect_or_none_explicit_dead_raises(self):
        with pytest.raises(ServiceUnavailableError) as err:
            connect_or_none("127.0.0.1:1")
        assert "127.0.0.1:1" in str(err.value)

    def test_connect_or_none_env_dead_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE", "127.0.0.1:1")
        assert connect_or_none(None) is None

    def test_connect_or_none_live(self, server, tmp_path):
        client = connect_or_none(str(tmp_path / "service.json"))
        assert client is not None
        assert client.ping()["type"] == "pong"

    def test_executor_falls_back_when_env_server_dead(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE", "127.0.0.1:1")
        spec = hornet(nodes=4)
        points = small_points()[:1]
        records = SweepExecutor().run(spec, points)
        assert records[0].algorithm == points[0].algorithm


class TestShutdown:
    def test_shutdown_removes_state_and_stops(self, tmp_path):
        srv = SimulationServer(jobs=1, state_file=tmp_path / "service.json")
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(srv.host, srv.port)
        assert client.ping()["type"] == "pong"
        assert client.shutdown_server()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not (tmp_path / "service.json").exists()

    def test_shutdown_server_on_dead_port_is_false(self):
        assert ServiceClient("127.0.0.1", 1).shutdown_server() is False
