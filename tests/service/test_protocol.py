"""Tests for the simulation-service wire protocol (framing + codecs)."""

import dataclasses
import io
import math

import pytest

from repro.core.report import RunRecord
from repro.core.sweep import SweepPoint
from repro.errors import ConfigurationError
from repro.machine import hornet
from repro.mpi.reliable import ReliableConfig
from repro.service import protocol
from repro.sim.faults import FaultPlan


def sample_record(**overrides):
    base = dict(
        algorithm="scatter_ring_opt",
        nranks=8,
        nbytes=65536,
        root=0,
        time=1.234567890123456e-4,  # full double precision must survive
        messages=42,
        bytes_on_wire=131072,
        intra_messages=30,
        inter_messages=12,
        machine="hornet",
        engine="replay",
        solver_mode="fluid",
        solver_solves=7,
        solver_rounds=19,
        solver_time_s=0.001234,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestFraming:
    def test_round_trip(self):
        buf = io.BytesIO()
        protocol.write_message(buf, {"op": "ping", "x": [1, 2.5, None]})
        buf.seek(0)
        assert protocol.read_message(buf) == {"op": "ping", "x": [1, 2.5, None]}

    def test_eof_returns_none(self):
        assert protocol.read_message(io.BytesIO(b"")) is None

    def test_malformed_json_raises(self):
        with pytest.raises(ConfigurationError):
            protocol.read_message(io.BytesIO(b"{not json}\n"))

    def test_non_object_raises(self):
        with pytest.raises(ConfigurationError):
            protocol.read_message(io.BytesIO(b"[1,2,3]\n"))

    def test_one_message_per_line(self):
        buf = io.BytesIO()
        protocol.write_message(buf, {"a": 1})
        protocol.write_message(buf, {"b": 2})
        buf.seek(0)
        assert protocol.read_message(buf) == {"a": 1}
        assert protocol.read_message(buf) == {"b": 2}
        assert protocol.read_message(buf) is None


class TestCodecs:
    def test_spec_round_trip(self):
        spec = hornet(nodes=4)
        assert protocol.decode_spec(protocol.encode_spec(spec)) == spec

    def test_record_round_trip_bitwise(self):
        rec = sample_record()
        back = protocol.decode_record(protocol.encode_record(rec))
        assert back == rec
        # Float fields survive exactly (shortest-repr JSON round-trip),
        # including the non-compared wall-time field.
        assert dataclasses.asdict(back) == dataclasses.asdict(rec)

    def test_record_special_float(self):
        rec = sample_record(time=math.pi * 1e-5)
        back = protocol.decode_record(protocol.encode_record(rec))
        assert back.time == rec.time

    def test_points_round_trip(self):
        points = [SweepPoint("a", 8, 1024), SweepPoint("b", 16, 2048)]
        assert protocol.decode_points(protocol.encode_points(points)) == points

    def test_faults_round_trip(self):
        plan = FaultPlan.uniform(seed=3, drop_p=0.1, name="t")
        back = protocol.decode_faults(protocol.encode_faults(plan))
        assert back.digest() == plan.digest()
        assert protocol.encode_faults(None) is None
        assert protocol.decode_faults(None) is None

    def test_reliable_round_trip(self):
        assert protocol.decode_reliable(protocol.encode_reliable(None)) is None
        assert protocol.decode_reliable(protocol.encode_reliable(True)) is True
        assert protocol.decode_reliable(protocol.encode_reliable(False)) is False
        cfg = ReliableConfig()
        assert protocol.decode_reliable(protocol.encode_reliable(cfg)) == cfg

    def test_reliable_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_reliable(object())
        with pytest.raises(ConfigurationError):
            protocol.decode_reliable({"kind": "nope"})


class TestStateFile:
    def test_write_read(self, tmp_path):
        path = tmp_path / "sub" / "service.json"
        protocol.write_state(path, "127.0.0.1", 12345, 999)
        assert protocol.read_state(path) == ("127.0.0.1", 12345)

    def test_missing_is_none(self, tmp_path):
        assert protocol.read_state(tmp_path / "absent.json") is None

    def test_corrupt_is_none(self, tmp_path):
        path = tmp_path / "service.json"
        path.write_text("not json")
        assert protocol.read_state(path) is None

    def test_default_lives_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert protocol.state_file_path(None) == tmp_path / "service.json"
        assert protocol.state_file_path(tmp_path / "x.json") == tmp_path / "x.json"


class TestLiveness:
    """A SIGKILL'd server cannot clean up its state file; discovery
    must detect the dead pid and remove the stale advertisement."""

    def test_read_state_full_includes_pid(self, tmp_path):
        path = tmp_path / "service.json"
        protocol.write_state(path, "127.0.0.1", 12345, 999)
        assert protocol.read_state_full(path) == ("127.0.0.1", 12345, 999)

    def test_own_pid_is_alive(self):
        import os

        assert protocol.pid_alive(os.getpid())

    def test_dead_pid_is_not_alive(self):
        import subprocess

        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()  # reaped: the pid no longer exists
        assert not protocol.pid_alive(proc.pid)

    def test_pid_zero_is_treated_as_no_information(self):
        # Old state files carry pid 0; signalling pid 0 would hit our
        # own process group, so it must never be probed — and absent
        # liveness information the advertisement is trusted.
        assert protocol.pid_alive(0)

    def test_locate_live_server_removes_stale_state(self, tmp_path):
        import subprocess

        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        path = tmp_path / "service.json"
        protocol.write_state(path, "127.0.0.1", 12345, proc.pid)
        assert protocol.locate_live_server(path) is None
        assert not path.exists()  # stale advertisement removed

    def test_locate_live_server_keeps_live_advertisement(self, tmp_path):
        import os

        path = tmp_path / "service.json"
        protocol.write_state(path, "127.0.0.1", 12345, os.getpid())
        assert protocol.locate_live_server(path) == ("127.0.0.1", 12345)
        assert path.exists()
