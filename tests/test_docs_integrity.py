"""Documentation integrity: referenced files exist, inventories match.

Docs rot silently; these tests keep README/DESIGN/EXPERIMENTS honest
against the tree they describe.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "model.md",
    ROOT / "docs" / "api.md",
    ROOT / "docs" / "reproducing.md",
    ROOT / "docs" / "collectives.md",
    ROOT / "docs" / "performance.md",
    ROOT / "docs" / "analysis.md",
    ROOT / "docs" / "robustness.md",
]

_PATH_RE = re.compile(
    r"`((?:src/repro|examples|benchmarks|docs|tests)/[A-Za-z0-9_/.-]+\.(?:py|md))`"
)


def test_all_doc_files_exist():
    for doc in DOCS:
        assert doc.exists(), doc


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_referenced_paths_exist(doc):
    text = doc.read_text()
    for match in _PATH_RE.finditer(text):
        path = ROOT / match.group(1)
        assert path.exists(), f"{doc.name} references missing {match.group(1)}"


def test_readme_example_table_matches_directory():
    text = (ROOT / "README.md").read_text()
    on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
    referenced = set(re.findall(r"examples/([a-z_]+\.py)", text))
    assert referenced <= on_disk
    # Every shipped example is advertised.
    assert on_disk <= referenced


def test_design_lists_every_benchmark_module():
    text = (ROOT / "DESIGN.md").read_text() + (ROOT / "docs" / "reproducing.md").read_text()
    for bench in (ROOT / "benchmarks").glob("test_*.py"):
        if bench.name == "test_zz_report.py":
            continue  # collation helper, not an experiment
        assert bench.name in text, f"{bench.name} not documented"


def test_experiments_covers_every_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for needle in ("Fig. 6(a)", "Fig. 6(b)", "Fig. 6(c)", "Fig. 7", "Fig. 8", "P=8", "P=10"):
        assert needle in text, needle


def test_registry_algorithms_documented():
    from repro.collectives import ALGORITHMS

    api_doc = (ROOT / "docs" / "api.md").read_text()
    for name in ALGORITHMS:
        assert name in api_doc, f"algorithm {name} missing from docs/api.md"
