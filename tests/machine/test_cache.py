"""Tests for the cache/memory-pressure effectiveness model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.machine import MachineSpec, copy_effectiveness, working_set_bytes
from repro.util import MIB, GIB

SPEC = MachineSpec(l3_bytes=30 * MIB, l3_penalty=0.5, mem_pressure_bytes=1 * GIB, mem_penalty=0.8)


class TestWorkingSet:
    def test_scales_with_colocated_ranks(self):
        assert working_set_bytes(1 * MIB, 24) == 24 * MIB

    def test_rejects_bad_args(self):
        with pytest.raises(MachineError):
            working_set_bytes(-1, 1)
        with pytest.raises(MachineError):
            working_set_bytes(1, 0)


class TestEffectiveness:
    def test_small_working_set_is_unpenalized(self):
        assert copy_effectiveness(SPEC, 1 * MIB) == 1.0
        assert copy_effectiveness(SPEC, 30 * MIB) == 1.0

    def test_far_past_l3_hits_floor(self):
        assert copy_effectiveness(SPEC, 100 * MIB) == pytest.approx(0.5)

    def test_ramp_is_strictly_between(self):
        mid = copy_effectiveness(SPEC, 45 * MIB)
        assert 0.5 < mid < 1.0

    def test_memory_pressure_compounds(self):
        eff = copy_effectiveness(SPEC, 4 * GIB)
        assert eff == pytest.approx(0.5 * 0.8)

    def test_penalty_one_disables_effect(self):
        spec = SPEC.with_(l3_penalty=1.0, mem_penalty=1.0)
        assert copy_effectiveness(spec, 10 * GIB) == 1.0

    def test_rejects_negative_working_set(self):
        with pytest.raises(MachineError):
            copy_effectiveness(SPEC, -1)

    def test_knee_appears_earlier_with_more_ranks(self):
        """The paper's 3 MiB @256p vs 4 MiB @16p ordering: with more
        co-located ranks the same message size produces a bigger working
        set and hence a lower effectiveness."""
        msg = 2 * MIB
        eff_16 = copy_effectiveness(SPEC, working_set_bytes(msg, 16))
        eff_24 = copy_effectiveness(SPEC, working_set_bytes(msg, 24))
        assert eff_24 <= eff_16

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_bounded_and_monotone(self, ws):
        eff = copy_effectiveness(SPEC, ws)
        assert 0.0 < eff <= 1.0
        # Monotone non-increasing: compare with a slightly larger set.
        assert copy_effectiveness(SPEC, ws + (1 << 20)) <= eff + 1e-12
