"""Tests for straggler / heterogeneity injection (Machine.cpu_scale)."""

import pytest

from repro.collectives import bcast_scatter_ring_native, bcast_scatter_ring_opt
from repro.errors import MachineError
from repro.machine import Machine, ideal
from repro.mpi import Job


def bcast_time(algo, machine, nbytes=2**20):
    def factory(ctx):
        def program():
            return (yield from algo(ctx, nbytes, 0))

        return program()

    return Job(machine, factory).run().time


class TestCpuScale:
    def test_default_uniform(self):
        m = Machine(ideal(), nranks=4)
        assert all(c.capacity == m.spec.cpu_copy_bw for c in m.cpu)

    def test_dict_form(self):
        m = Machine(ideal(), nranks=4, cpu_scale={2: 0.5})
        assert m.cpu[2].capacity == pytest.approx(0.5 * m.spec.cpu_copy_bw)
        assert m.cpu[0].capacity == m.spec.cpu_copy_bw

    def test_sequence_form(self):
        m = Machine(ideal(), nranks=3, cpu_scale=[1.0, 2.0, 0.25])
        assert m.cpu[1].capacity == pytest.approx(2.0 * m.spec.cpu_copy_bw)

    def test_bad_rank(self):
        with pytest.raises(MachineError):
            Machine(ideal(), nranks=2, cpu_scale={5: 0.5})

    def test_bad_length(self):
        with pytest.raises(MachineError):
            Machine(ideal(), nranks=3, cpu_scale=[1.0, 1.0])

    def test_nonpositive_factor(self):
        with pytest.raises(MachineError):
            Machine(ideal(), nranks=2, cpu_scale={0: 0.0})


class TestStragglerStudies:
    def test_straggler_slows_the_ring(self):
        spec = ideal(nodes=2, cores_per_node=8)
        clean = bcast_time(
            bcast_scatter_ring_native, Machine(spec, nranks=16)
        )
        degraded = bcast_time(
            bcast_scatter_ring_native,
            Machine(spec, nranks=16, cpu_scale={7: 0.25}),
        )
        # The ring serialises through every rank: one slow rank hurts.
        assert degraded > clean * 1.5

    def test_tuned_ring_not_more_straggler_sensitive(self):
        """The optimisation must not make the broadcast more fragile:
        with a 4x straggler the tuned ring stays at least as fast as the
        native one."""
        spec = ideal(nodes=2, cores_per_node=8)
        for straggler in (0, 7, 15):
            scale = {straggler: 0.25}
            t_native = bcast_time(
                bcast_scatter_ring_native,
                Machine(spec, nranks=16, cpu_scale=scale),
            )
            t_opt = bcast_time(
                bcast_scatter_ring_opt,
                Machine(spec, nranks=16, cpu_scale=scale),
            )
            assert t_opt <= t_native * (1 + 1e-9), straggler

    def test_fast_rank_cannot_beat_ring_structure(self):
        """Speeding one rank up leaves the makespan within a whisker —
        the ring is only as fast as its slowest link."""
        spec = ideal(nodes=2, cores_per_node=8)
        clean = bcast_time(
            bcast_scatter_ring_native, Machine(spec, nranks=16)
        )
        boosted = bcast_time(
            bcast_scatter_ring_native,
            Machine(spec, nranks=16, cpu_scale={3: 4.0}),
        )
        assert boosted <= clean * (1 + 1e-9)
        assert boosted > clean * 0.9
