"""Tests for rank-to-node placement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlacementError
from repro.machine import blocked, round_robin, custom, make_placement
from repro.machine.placement import Placement


class TestBlocked:
    def test_fills_nodes_in_order(self):
        p = blocked(10, nodes=4, cores_per_node=4)
        assert [p.node_of(r) for r in range(10)] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_paper_default_16_ranks_one_hornet_node(self):
        # "All data transmissions occur within one node when only 16
        # processes are launched" (24 cores per node).
        p = blocked(16, nodes=16, cores_per_node=24)
        assert p.used_nodes() == [0]
        assert all(p.same_node(0, r) for r in range(16))

    def test_64_ranks_span_three_hornet_nodes(self):
        p = blocked(64, nodes=16, cores_per_node=24)
        assert p.used_nodes() == [0, 1, 2]
        assert len(p.ranks_on(2)) == 64 - 48

    def test_ring_neighbours_mostly_intra_node(self):
        p = blocked(64, nodes=16, cores_per_node=24)
        inter = sum(
            not p.same_node(r, (r + 1) % 64) for r in range(64)
        )
        assert inter == 3  # one crossing per node boundary + wraparound

    def test_capacity_checked(self):
        with pytest.raises(PlacementError):
            blocked(100, nodes=2, cores_per_node=4)

    def test_needs_positive_ranks(self):
        with pytest.raises(PlacementError):
            blocked(0, nodes=1, cores_per_node=1)


class TestRoundRobin:
    def test_cycles_over_same_node_count_as_blocked(self):
        rr = round_robin(10, nodes=8, cores_per_node=4)
        bl = blocked(10, nodes=8, cores_per_node=4)
        assert rr.used_nodes() == bl.used_nodes()

    def test_neighbours_land_on_distinct_nodes(self):
        p = round_robin(12, nodes=4, cores_per_node=4)
        assert all(not p.same_node(r, (r + 1) % 12) for r in range(12))

    def test_single_node_degenerates(self):
        p = round_robin(4, nodes=4, cores_per_node=8)
        assert p.used_nodes() == [0]


class TestCustom:
    def test_explicit_mapping(self):
        p = custom([2, 0, 2], nodes=3)
        assert p.node_of(0) == 2
        assert p.ranks_on(2) == [0, 2]
        assert p.ranks_on(1) == []

    def test_out_of_range_node_rejected(self):
        with pytest.raises(PlacementError):
            custom([0, 5], nodes=3)


class TestQueries:
    def test_node_leader(self):
        p = custom([1, 1, 0], nodes=2)
        assert p.node_leader(1) == 0
        assert p.node_leader(0) == 2

    def test_node_leader_empty_node(self):
        p = custom([0], nodes=2)
        with pytest.raises(PlacementError):
            p.node_leader(1)

    def test_max_ranks_per_node(self):
        p = custom([0, 0, 0, 1], nodes=2)
        assert p.max_ranks_per_node() == 3

    def test_bad_rank_and_node_queries(self):
        p = blocked(4, nodes=2, cores_per_node=2)
        with pytest.raises(PlacementError):
            p.node_of(4)
        with pytest.raises(PlacementError):
            p.ranks_on(2)

    def test_repr(self):
        assert "blocked" in repr(blocked(4, nodes=2, cores_per_node=2))


class TestFactory:
    def test_by_name(self):
        p = make_placement("blocked", 4, 2, 2)
        assert p.policy == "blocked"
        p = make_placement("round_robin", 4, 2, 2)
        assert p.policy == "round_robin"

    def test_by_callable(self):
        p = make_placement(lambda n, nodes, cpn: custom([0] * n, nodes), 3, 2, 4)
        assert p.policy == "custom"

    def test_passthrough_instance(self):
        p = custom([0, 1], nodes=2)
        assert make_placement(p, 2, 2, 1) is p

    def test_unknown_name(self):
        with pytest.raises(PlacementError):
            make_placement("spiral", 4, 2, 2)


@given(
    nranks=st.integers(min_value=1, max_value=200),
    cores=st.integers(min_value=1, max_value=32),
)
def test_property_blocked_partition(nranks, cores):
    """Blocked placement partitions ranks into contiguous full-then-partial
    node groups covering every rank exactly once."""
    nodes = -(-nranks // cores)
    p = blocked(nranks, nodes=nodes, cores_per_node=cores)
    seen = []
    for node in p.used_nodes():
        ranks = p.ranks_on(node)
        assert ranks == sorted(ranks)
        assert len(ranks) <= cores
        seen.extend(ranks)
    assert seen == list(range(nranks))
    # All but the last used node are full.
    for node in p.used_nodes()[:-1]:
        assert len(p.ranks_on(node)) == cores
