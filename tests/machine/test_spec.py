"""Tests for MachineSpec validation and the presets."""

import pytest

from repro.errors import MachineError
from repro.machine import MachineSpec, hornet, laki, ideal
from repro.util import GIB


class TestValidation:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.total_cores == spec.nodes * spec.cores_per_node

    @pytest.mark.parametrize(
        "field,value",
        [
            ("nodes", 0),
            ("cores_per_node", 0),
            ("alpha_intra", -1.0),
            ("alpha_inter", -1.0),
            ("send_overhead", -1e-9),
            ("cpu_copy_bw", 0.0),
            ("mem_bw", -1.0),
            ("nic_bw", 0.0),
            ("eager_threshold", -1),
            ("l3_penalty", 0.0),
            ("l3_penalty", 1.5),
            ("mem_penalty", -0.1),
            ("l3_bytes", 0),
            ("mem_pressure_bytes", -5),
            ("jitter_sigma", -0.1),
        ],
    )
    def test_rejects_bad_field(self, field, value):
        with pytest.raises(MachineError):
            MachineSpec(**{field: value})

    def test_with_replaces_field(self):
        spec = MachineSpec(nodes=4)
        spec2 = spec.with_(nodes=8, nic_bw=1.0 * GIB)
        assert spec2.nodes == 8 and spec2.nic_bw == 1.0 * GIB
        assert spec.nodes == 4  # original untouched

    def test_with_still_validates(self):
        with pytest.raises(MachineError):
            MachineSpec().with_(nodes=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineSpec().nodes = 3

    def test_describe_mentions_name_and_layout(self):
        text = MachineSpec(name="foo", nodes=3, cores_per_node=7).describe()
        assert "foo" in text and "3 nodes" in text and "7 cores" in text


class TestPresets:
    def test_hornet_matches_paper_hardware(self):
        spec = hornet()
        assert spec.cores_per_node == 24  # dual Haswell E5-2680v3
        assert spec.topology == "dragonfly"  # Aries
        assert spec.name == "hornet"

    def test_laki_matches_paper_hardware(self):
        spec = laki()
        assert spec.cores_per_node == 8  # dual X5560
        assert spec.topology == "fattree"  # InfiniBand switched fabric
        assert spec.l3_bytes == 8 * 1024 * 1024  # 8MB L3 per the paper

    def test_ideal_has_no_second_order_effects(self):
        spec = ideal()
        assert spec.send_overhead == 0.0
        assert spec.l3_penalty == 1.0
        assert spec.topology == "crossbar"

    def test_presets_accept_overrides(self):
        spec = hornet(nodes=4, nic_bw=1.0)
        assert spec.nodes == 4 and spec.nic_bw == 1.0

    def test_hornet_fits_256_ranks(self):
        # Fig. 6(c) needs 256 processes.
        assert hornet().total_cores >= 256

    def test_laki_fits_129_ranks(self):
        # Fig. 7/8 need up to 129 processes.
        assert laki().total_cores >= 129

    def test_hornet_is_the_faster_machine(self):
        """The Cray preset out-classes the older NEC cluster on every
        bandwidth axis, as the real systems did."""
        h, l = hornet(), laki()
        assert h.nic_bw > l.nic_bw
        assert h.mem_bw > l.mem_bw
        assert h.cpu_copy_bw > l.cpu_copy_bw
        assert h.alpha_inter < l.alpha_inter

    def test_presets_actually_deliver_their_ordering(self):
        """End to end: the same broadcast is faster on Hornet."""
        from repro.core import simulate_bcast

        th = simulate_bcast(hornet(nodes=2), 16, 2**20).time
        tl = simulate_bcast(laki(nodes=4), 16, 2**20).time
        assert th < tl

    def test_preset_names_match(self):
        assert hornet().name == "hornet"
        assert laki().name == "laki"
        assert ideal().name == "ideal"
