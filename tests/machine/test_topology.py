"""Tests for the fabric topologies."""

import networkx as nx
import pytest

from repro.errors import MachineError
from repro.machine import (
    CrossbarTopology,
    DragonflyTopology,
    FatTreeTopology,
    GraphTopology,
    node_key,
)

GIB = 1 << 30


class TestCrossbar:
    def test_ideal_has_no_fabric_resources(self):
        topo = CrossbarTopology(8, nic_bw=GIB)
        route = topo.route(0, 5)
        assert route.resources == ()
        assert route.hops == 2
        assert topo.all_resources() == []

    def test_tapered_core_shared_by_all_routes(self):
        topo = CrossbarTopology(8, nic_bw=GIB, core_taper=0.5)
        r1 = topo.route(0, 5)
        r2 = topo.route(3, 7)
        assert r1.resources == r2.resources
        assert r1.resources[0].capacity == pytest.approx(0.5 * 8 * GIB)

    def test_route_cached(self):
        topo = CrossbarTopology(4, nic_bw=GIB)
        assert topo.route(0, 1) is topo.route(0, 1)

    def test_self_route_rejected(self):
        with pytest.raises(MachineError):
            CrossbarTopology(4, nic_bw=GIB).route(2, 2)

    def test_bad_node_rejected(self):
        with pytest.raises(MachineError):
            CrossbarTopology(4, nic_bw=GIB).route(0, 4)

    def test_bad_params(self):
        with pytest.raises(MachineError):
            CrossbarTopology(0, nic_bw=GIB)
        with pytest.raises(MachineError):
            CrossbarTopology(4, nic_bw=0)
        with pytest.raises(MachineError):
            CrossbarTopology(4, nic_bw=GIB, core_taper=-1)

    def test_graph_is_star(self):
        g = CrossbarTopology(5, nic_bw=GIB).graph()
        assert g.degree("core") == 10  # 5 in + 5 out


class TestFatTree:
    def test_same_leaf_no_fabric(self):
        topo = FatTreeTopology(8, nic_bw=GIB, radix=4)
        assert topo.route(0, 3).resources == ()
        assert topo.route(0, 3).hops == 2

    def test_cross_leaf_uses_up_and_down(self):
        topo = FatTreeTopology(8, nic_bw=GIB, radix=4, uplink_taper=0.5)
        route = topo.route(1, 6)
        assert route.hops == 4
        names = [r.name for r in route.resources]
        assert names == ["leaf0.up", "leaf1.down"]
        assert route.resources[0].capacity == pytest.approx(0.5 * 4 * GIB)

    def test_reverse_route_uses_other_links(self):
        topo = FatTreeTopology(8, nic_bw=GIB, radix=4)
        fwd = {r.name for r in topo.route(0, 7).resources}
        rev = {r.name for r in topo.route(7, 0).resources}
        assert fwd.isdisjoint(rev)

    def test_leaf_count_rounds_up(self):
        assert FatTreeTopology(9, nic_bw=GIB, radix=4).n_leaves == 3

    def test_bad_params(self):
        with pytest.raises(MachineError):
            FatTreeTopology(4, nic_bw=GIB, radix=0)
        with pytest.raises(MachineError):
            FatTreeTopology(4, nic_bw=GIB, uplink_taper=0)

    def test_graph_routes_match_resources(self):
        """Shortest graph paths traverse exactly the route's resources."""
        topo = FatTreeTopology(8, nic_bw=GIB, radix=4)
        g = topo.graph()
        path = nx.shortest_path(g, ("node", 1), ("node", 6))
        edge_res = [
            g.edges[u, v]["resource"]
            for u, v in zip(path, path[1:])
            if g.edges[u, v]["resource"] is not None
        ]
        assert tuple(edge_res) == topo.route(1, 6).resources


class TestDragonfly:
    def test_same_group_local_only(self):
        topo = DragonflyTopology(8, nic_bw=GIB, group_size=4)
        route = topo.route(0, 3)
        assert [r.kind for r in route.resources] == ["fabric-local"]

    def test_cross_group_path(self):
        topo = DragonflyTopology(8, nic_bw=GIB, group_size=4, global_taper=0.25)
        route = topo.route(0, 5)
        kinds = [r.kind for r in route.resources]
        assert kinds == [
            "fabric-local",
            "fabric-global",
            "fabric-global",
            "fabric-local",
        ]
        assert route.hops > topo.route(0, 3).hops
        # Global capacity is tapered: 0.25 * 4 * nic.
        assert route.resources[1].capacity == pytest.approx(0.25 * 4 * GIB)

    def test_groups_round_up(self):
        assert DragonflyTopology(9, nic_bw=GIB, group_size=4).n_groups == 3

    def test_all_resources_deterministic_order(self):
        topo = DragonflyTopology(8, nic_bw=GIB, group_size=4)
        names = [r.name for r in topo.all_resources()]
        assert names == [
            "grp0.local",
            "grp0.gout",
            "grp0.gin",
            "grp1.local",
            "grp1.gout",
            "grp1.gin",
        ]

    def test_bad_params(self):
        with pytest.raises(MachineError):
            DragonflyTopology(4, nic_bw=GIB, group_size=0)
        with pytest.raises(MachineError):
            DragonflyTopology(4, nic_bw=GIB, global_taper=0)

    def test_graph_is_connected(self):
        g = DragonflyTopology(12, nic_bw=GIB, group_size=4).graph()
        assert nx.is_strongly_connected(g)


class TestGraphTopology:
    def _line_graph(self, caps):
        """node0 -- sw -- node1 with the given two capacities."""
        g = nx.DiGraph()
        g.add_edge(node_key(0), "sw", capacity=caps[0])
        g.add_edge("sw", node_key(1), capacity=caps[1])
        g.add_edge(node_key(1), "sw", capacity=caps[1])
        g.add_edge("sw", node_key(0), capacity=caps[0])
        return g

    def test_route_collects_capacitated_edges(self):
        topo = GraphTopology(2, nic_bw=GIB, graph=self._line_graph([GIB, 2 * GIB]))
        route = topo.route(0, 1)
        assert route.hops == 2
        assert len(route.resources) == 2

    def test_none_capacity_edges_are_transparent(self):
        g = self._line_graph([GIB, GIB])
        g.add_edge(node_key(0), node_key(1), capacity=None)
        topo = GraphTopology(2, nic_bw=GIB, graph=g)
        # Direct edge is shorter and carries no resource.
        route = topo.route(0, 1)
        assert route.hops == 1 and route.resources == ()

    def test_missing_vertex_rejected(self):
        with pytest.raises(MachineError):
            GraphTopology(3, nic_bw=GIB, graph=self._line_graph([GIB, GIB]))

    def test_no_path_rejected(self):
        g = nx.DiGraph()
        g.add_node(node_key(0))
        g.add_node(node_key(1))
        topo = GraphTopology(2, nic_bw=GIB, graph=g)
        with pytest.raises(MachineError):
            topo.route(0, 1)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(MachineError):
            GraphTopology(2, nic_bw=GIB, graph=self._line_graph([0, GIB]))

    def test_all_resources_listed(self):
        topo = GraphTopology(2, nic_bw=GIB, graph=self._line_graph([GIB, GIB]))
        assert len(topo.all_resources()) == 4
