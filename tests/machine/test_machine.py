"""Tests for the Machine facade (resources + transfer plans)."""

import pytest

from repro.errors import MachineError
from repro.machine import Machine, MachineSpec, hornet, ideal
from repro.util import MIB, GIB


def small_machine(**kw):
    spec = MachineSpec(
        nodes=4,
        cores_per_node=4,
        topology="crossbar",
        **kw,
    )
    return Machine(spec, nranks=16)


class TestConstruction:
    def test_resources_created_per_used_node(self):
        spec = MachineSpec(nodes=8, cores_per_node=4, topology="crossbar")
        m = Machine(spec, nranks=6)  # spans nodes 0 and 1
        assert sorted(m.mem) == [0, 1]
        assert len(m.cpu) == 6

    def test_capacity_enforced(self):
        with pytest.raises(MachineError):
            Machine(MachineSpec(nodes=1, cores_per_node=2), nranks=3)

    def test_bad_nranks(self):
        with pytest.raises(MachineError):
            Machine(MachineSpec(), nranks=0)

    def test_unknown_topology(self):
        with pytest.raises(MachineError):
            Machine(MachineSpec(topology="torus"), nranks=2)

    def test_explicit_topology_node_count_checked(self):
        from repro.machine import CrossbarTopology

        with pytest.raises(MachineError):
            Machine(
                MachineSpec(nodes=4),
                nranks=2,
                topology=CrossbarTopology(2, nic_bw=GIB),
            )

    def test_describe_and_repr(self):
        m = small_machine()
        assert "placement=blocked" in m.describe()
        assert "Machine" in repr(m)


class TestTransferPlans:
    def test_intra_node_path(self):
        m = small_machine()
        plan = m.transfer_plan(0, 1)  # both on node 0
        assert plan.intra_node
        kinds = [r.kind for r in plan.resources]
        assert kinds == ["cpu", "mem", "cpu"]
        assert plan.latency == m.spec.alpha_intra

    def test_inter_node_path(self):
        m = small_machine()
        plan = m.transfer_plan(0, 5)  # node 0 -> node 1
        assert not plan.intra_node
        kinds = [r.kind for r in plan.resources]
        assert kinds == ["cpu", "mem", "nic", "nic", "mem", "cpu"]
        assert plan.latency > m.spec.alpha_intra

    def test_inter_node_includes_fabric(self):
        m = Machine(hornet(nodes=16), nranks=16 * 24)
        # ranks 0 and 200: nodes 0 and 8 -> different dragonfly groups.
        plan = m.transfer_plan(0, 200)
        kinds = [r.kind for r in plan.resources]
        assert "fabric-global" in kinds

    def test_latency_includes_hops(self):
        m = Machine(hornet(nodes=16), nranks=16 * 24)
        same_group = m.transfer_plan(0, 30)  # nodes 0,1: same group
        cross_group = m.transfer_plan(0, 200)
        assert cross_group.latency > same_group.latency

    def test_self_message_rejected(self):
        with pytest.raises(MachineError):
            small_machine().transfer_plan(2, 2)

    def test_bad_rank_rejected(self):
        with pytest.raises(MachineError):
            small_machine().transfer_plan(0, 99)

    def test_paths_share_resources_between_plans(self):
        m = small_machine()
        p1 = m.transfer_plan(0, 1)
        p2 = m.transfer_plan(1, 0)
        # Same node memory engine appears in both directions.
        assert p1.resources[1] is p2.resources[1]


class TestWorkingSetCacheEffects:
    def test_no_cap_without_working_set(self):
        m = small_machine()
        assert m.transfer_plan(0, 1).rate_cap is None

    def test_no_cap_below_l3(self):
        m = small_machine(l3_bytes=64 * MIB)
        m.set_working_set(1 * MIB)
        assert m.transfer_plan(0, 1).rate_cap is None

    def test_cap_applied_past_l3(self):
        m = small_machine(l3_bytes=1 * MIB, l3_penalty=0.5)
        m.set_working_set(16 * MIB)
        cap = m.transfer_plan(0, 1).rate_cap
        assert cap == pytest.approx(0.5 * m.spec.cpu_copy_bw)

    def test_cap_uses_colocated_rank_count(self):
        # Same buffer, more ranks per node -> bigger working set.
        spec = MachineSpec(nodes=4, cores_per_node=8, l3_bytes=8 * MIB, l3_penalty=0.5)
        dense = Machine(spec, nranks=8)  # 8 ranks on one node
        sparse = Machine(spec, nranks=2)  # 2 ranks on one node
        for m in (dense, sparse):
            m.set_working_set(2 * MIB)
        cap_dense = dense.transfer_plan(0, 1).rate_cap
        cap_sparse = sparse.transfer_plan(0, 1).rate_cap
        assert cap_dense is not None
        assert cap_sparse is None or cap_sparse > cap_dense

    def test_negative_working_set_rejected(self):
        with pytest.raises(MachineError):
            small_machine().set_working_set(-1)

    def test_ideal_machine_never_caps(self):
        m = Machine(ideal(), nranks=8)
        m.set_working_set(1 << 40)
        assert m.transfer_plan(0, 1).rate_cap is None
